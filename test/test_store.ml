(* Tests for lion_store: placement invariants, OCC sessions, cluster
   replica operations (remaster / add / remove / cooldown). *)

module Placement = Lion_store.Placement
module Kvstore = Lion_store.Kvstore
module Config = Lion_store.Config
module Cluster = Lion_store.Cluster
module Engine = Lion_sim.Engine

(* --- placement --- *)

let mk ?(nodes = 4) ?(partitions = 8) ?(replicas = 2) ?(max_replicas = 4) () =
  Placement.create ~nodes ~partitions ~replicas ~max_replicas ()

let test_round_robin_layout () =
  let p = mk () in
  for part = 0 to 7 do
    Alcotest.(check int) "primary round robin" (part mod 4) (Placement.primary p part);
    Alcotest.(check (list int))
      "secondary follows"
      [ (part + 1) mod 4 ]
      (Placement.secondaries p part)
  done

let test_replica_counts () =
  let p = mk ~replicas:3 () in
  Alcotest.(check int) "three replicas" 3 (Placement.replica_count p 0)

let test_remaster_swaps () =
  let p = mk () in
  (* Partition 0: primary node 0, secondary node 1. *)
  Placement.remaster p ~part:0 ~node:1;
  Alcotest.(check int) "new primary" 1 (Placement.primary p 0);
  Alcotest.(check bool) "old primary demoted" true (Placement.has_secondary p ~part:0 ~node:0);
  Alcotest.(check int) "replica count unchanged" 2 (Placement.replica_count p 0)

let test_remaster_noop_on_primary () =
  let p = mk () in
  Placement.remaster p ~part:0 ~node:0;
  Alcotest.(check int) "unchanged" 0 (Placement.primary p 0)

let test_remaster_requires_replica () =
  let p = mk () in
  Alcotest.check_raises "no replica"
    (Invalid_argument "Placement.remaster: node 3 holds no replica of partition 0")
    (fun () -> Placement.remaster p ~part:0 ~node:3)

let test_add_secondary () =
  let p = mk () in
  Placement.add_secondary p ~part:0 ~node:2;
  Alcotest.(check bool) "added" true (Placement.has_secondary p ~part:0 ~node:2);
  (* Idempotent on existing replica. *)
  Placement.add_secondary p ~part:0 ~node:2;
  Alcotest.(check int) "no duplicate" 3 (Placement.replica_count p 0)

let test_add_secondary_respects_max () =
  let p = mk ~max_replicas:2 () in
  Alcotest.check_raises "at max"
    (Invalid_argument "Placement.add_secondary: partition 0 already at max replicas")
    (fun () -> Placement.add_secondary p ~part:0 ~node:2)

let test_remove_secondary () =
  let p = mk () in
  Placement.remove_secondary p ~part:0 ~node:1;
  Alcotest.(check int) "one replica left" 1 (Placement.replica_count p 0);
  Alcotest.check_raises "cannot remove primary"
    (Invalid_argument "Placement.remove_secondary: cannot remove the primary") (fun () ->
      Placement.remove_secondary p ~part:0 ~node:0)

let test_best_local_node () =
  let p = mk () in
  (* Partitions 0 and 1: primaries at 0,1; secondaries at 1,2.
     Node 1 holds a replica of both. *)
  Alcotest.(check (option int)) "common node" (Some 1) (Placement.best_local_node p [ 0; 1 ]);
  (* Partitions 0 and 2 share node 0 (primary 0 / primary 2 is node 2,
     secondary of 2 is node 3) — no common node except... 0 has replica
     of 0 only. *)
  Alcotest.(check (option int)) "no common node" None (Placement.best_local_node p [ 0; 2 ])

let test_best_local_prefers_primaries () =
  let p = mk ~nodes:2 ~partitions:2 () in
  (* Both nodes hold replicas of both partitions (2 replicas, 2 nodes).
     Node 0 is primary of partition 0; node 1 of partition 1 — equal
     primary counts, tie goes to the lower id. *)
  Alcotest.(check (option int)) "tie to lower id" (Some 0)
    (Placement.best_local_node p [ 0; 1 ]);
  Placement.remaster p ~part:1 ~node:0;
  Alcotest.(check (option int)) "now node 0 dominates" (Some 0)
    (Placement.best_local_node p [ 0; 1 ])

let test_parts_primary_on () =
  let p = mk () in
  Alcotest.(check (list int)) "node 0's primaries" [ 0; 4 ] (Placement.parts_primary_on p 0)

let test_count_helpers () =
  let p = mk () in
  Alcotest.(check int) "primaries at node 0" 1
    (Placement.count_primaries_at p [ 0; 1; 2 ] ~node:0);
  Alcotest.(check int) "replicas at node 1" 2
    (Placement.count_replicas_at p [ 0; 1; 2 ] ~node:1)

let test_copy_isolated () =
  let p = mk () in
  let q = Placement.copy p in
  Placement.remaster q ~part:0 ~node:1;
  Alcotest.(check int) "original untouched" 0 (Placement.primary p 0);
  Alcotest.(check int) "copy changed" 1 (Placement.primary q 0)

let placement_invariant p =
  let ok = ref true in
  for part = 0 to Placement.partitions p - 1 do
    let prim = Placement.primary p part in
    if Placement.has_secondary p ~part ~node:prim then ok := false;
    if Placement.replica_count p part > Placement.max_replicas p then ok := false
  done;
  !ok

let test_placement_invariant_random_ops =
  QCheck.Test.make ~name:"random replica ops preserve invariants" ~count:100
    QCheck.(list (pair (int_range 0 7) (int_range 0 3)))
    (fun ops ->
      let p = mk () in
      List.iter
        (fun (part, node) ->
          (try Placement.add_secondary p ~part ~node with Invalid_argument _ -> ());
          if Placement.has_replica p ~part ~node then Placement.remaster p ~part ~node)
        ops;
      placement_invariant p)

(* --- kvstore / OCC --- *)

let test_versions_start_at_zero () =
  let s = Kvstore.create () in
  Alcotest.(check int) "fresh key" 0 (Kvstore.version s (Kvstore.key ~part:0 ~slot:42))

let test_commit_bumps_versions () =
  let s = Kvstore.create () in
  let k = Kvstore.key ~part:1 ~slot:2 in
  let session = Kvstore.begin_session s in
  Kvstore.write session k;
  Kvstore.commit_session session;
  Alcotest.(check int) "bumped" 1 (Kvstore.version s k)

let test_validate_detects_conflict () =
  let s = Kvstore.create () in
  let k = Kvstore.key ~part:0 ~slot:0 in
  let t1 = Kvstore.begin_session s in
  Kvstore.read t1 k;
  (* Concurrent writer commits first. *)
  let t2 = Kvstore.begin_session s in
  Kvstore.write t2 k;
  Kvstore.commit_session t2;
  Alcotest.(check bool) "t1 invalid" false (Kvstore.validate t1)

let test_validate_passes_without_conflict () =
  let s = Kvstore.create () in
  let t1 = Kvstore.begin_session s in
  Kvstore.read t1 (Kvstore.key ~part:0 ~slot:0);
  let t2 = Kvstore.begin_session s in
  Kvstore.write t2 (Kvstore.key ~part:0 ~slot:1);
  Kvstore.commit_session t2;
  Alcotest.(check bool) "disjoint keys fine" true (Kvstore.validate t1)

let test_reserve_blocks_concurrent_writers () =
  let s = Kvstore.create () in
  let k = Kvstore.key ~part:0 ~slot:7 in
  let t1 = Kvstore.begin_session s in
  Kvstore.write t1 k;
  let t2 = Kvstore.begin_session s in
  Kvstore.write t2 k;
  Alcotest.(check bool) "t1 reserves" true (Kvstore.try_reserve t1);
  Alcotest.(check bool) "t2 blocked by pending" false (Kvstore.try_reserve t2);
  Kvstore.finalize t1;
  Alcotest.(check bool) "t2 still stale (version moved)" false (Kvstore.try_reserve t2)

let test_release_reservation_unblocks () =
  let s = Kvstore.create () in
  let k = Kvstore.key ~part:0 ~slot:9 in
  let t1 = Kvstore.begin_session s in
  Kvstore.write t1 k;
  Alcotest.(check bool) "reserved" true (Kvstore.try_reserve t1);
  Kvstore.release_reservation t1;
  let t2 = Kvstore.begin_session s in
  Kvstore.write t2 k;
  Alcotest.(check bool) "t2 proceeds after release" true (Kvstore.try_reserve t2)

let test_reader_blocked_by_pending_write () =
  let s = Kvstore.create () in
  let k = Kvstore.key ~part:2 ~slot:3 in
  let writer = Kvstore.begin_session s in
  Kvstore.write writer k;
  Alcotest.(check bool) "writer reserves" true (Kvstore.try_reserve writer);
  let reader = Kvstore.begin_session s in
  Kvstore.read reader k;
  Alcotest.(check bool) "reader sees pending" false (Kvstore.try_reserve reader)

let test_write_is_rmw () =
  let s = Kvstore.create () in
  let k = Kvstore.key ~part:0 ~slot:1 in
  let t1 = Kvstore.begin_session s in
  Kvstore.write t1 k;
  (* Another transaction commits a write to the same key. *)
  let t2 = Kvstore.begin_session s in
  Kvstore.write t2 k;
  Kvstore.commit_session t2;
  (* t1's RMW semantics mean its write must now fail validation. *)
  Alcotest.(check bool) "lost update prevented" false (Kvstore.try_reserve t1)

let test_read_write_sets () =
  let s = Kvstore.create () in
  let t = Kvstore.begin_session s in
  let k1 = Kvstore.key ~part:0 ~slot:1 and k2 = Kvstore.key ~part:0 ~slot:2 in
  Kvstore.read t k1;
  Kvstore.write t k2;
  Alcotest.(check int) "reads include writes (RMW)" 2 (List.length (Kvstore.read_set t));
  Alcotest.(check int) "one write" 1 (List.length (Kvstore.write_set t))

let test_touched_keys_sparse () =
  let s = Kvstore.create () in
  let t = Kvstore.begin_session s in
  Kvstore.write t (Kvstore.key ~part:999 ~slot:123_456_789);
  Kvstore.commit_session t;
  Alcotest.(check int) "only touched keys stored" 1 (Kvstore.touched_keys s)

let test_occ_serializability_property =
  (* For any interleaving of two-key transactions where each validates
     through try_reserve before finalize, committed effects must equal
     some serial order — approximated here by checking version counts
     equal the number of successful commits per key. *)
  QCheck.Test.make ~name:"reserve/finalize installs each commit exactly once" ~count:50
    QCheck.(list (pair (int_range 0 3) bool))
    (fun txns ->
      let s = Kvstore.create () in
      let commits = Hashtbl.create 8 in
      List.iter
        (fun (slot, do_commit) ->
          let k = Kvstore.key ~part:0 ~slot in
          let t = Kvstore.begin_session s in
          Kvstore.write t k;
          if Kvstore.try_reserve t then
            if do_commit then (
              Kvstore.finalize t;
              Hashtbl.replace commits slot
                (1 + Option.value ~default:0 (Hashtbl.find_opt commits slot)))
            else Kvstore.release_reservation t)
        txns;
      Hashtbl.fold
        (fun slot n acc -> acc && Kvstore.version s (Kvstore.key ~part:0 ~slot) = n)
        commits true)

(* --- cluster --- *)

let mk_cluster ?(cfg = Config.default) () = Cluster.create ~seed:5 cfg

let test_cluster_shape () =
  let cl = mk_cluster () in
  Alcotest.(check int) "nodes" 4 (Cluster.node_count cl);
  Alcotest.(check int) "partitions" 48 (Cluster.partition_count cl)

let test_remaster_blocks_partition () =
  let cl = mk_cluster () in
  let part = 0 in
  let target = Placement.secondaries cl.Cluster.placement part |> List.hd in
  Alcotest.(check bool) "starts" true (Cluster.try_begin_remaster cl ~part ~node:target);
  Alcotest.(check bool) "partition blocked" true (Cluster.partition_wait cl part > 0.0);
  Engine.run_all cl.Cluster.engine ();
  Alcotest.(check int) "primary moved" target (Placement.primary cl.Cluster.placement part);
  Alcotest.(check int) "counted" 1 cl.Cluster.remaster_count

let test_remaster_conflict_refused () =
  let cl = mk_cluster () in
  let part = 0 in
  let target = Placement.secondaries cl.Cluster.placement part |> List.hd in
  Alcotest.(check bool) "first wins" true (Cluster.try_begin_remaster cl ~part ~node:target);
  Alcotest.(check bool) "second loses (inflight)" false
    (Cluster.try_begin_remaster cl ~part ~node:target)

let test_remaster_cooldown () =
  let cl = mk_cluster () in
  let part = 0 in
  let target = Placement.secondaries cl.Cluster.placement part |> List.hd in
  ignore (Cluster.try_begin_remaster cl ~part ~node:target);
  Engine.run_all cl.Cluster.engine ();
  (* Immediately flipping back must be refused during the cooldown. *)
  Alcotest.(check bool) "cooldown refuses flip-back" false
    (Cluster.try_begin_remaster cl ~part ~node:0);
  (* After the cooldown it is allowed again. *)
  Engine.run_until cl.Cluster.engine
    (Engine.now cl.Cluster.engine +. Config.default.Config.remaster_cooldown +. 1.0);
  Alcotest.(check bool) "allowed after cooldown" true
    (Cluster.try_begin_remaster cl ~part ~node:0)

let test_remaster_without_replica_refused () =
  let cl = mk_cluster () in
  (* Node 3 holds no replica of partition 0 (primary 0, secondary 1). *)
  Alcotest.(check bool) "refused" false (Cluster.try_begin_remaster cl ~part:0 ~node:3)

let test_add_replica_background () =
  let cl = mk_cluster () in
  let ready = ref false in
  Cluster.add_replica cl ~part:0 ~node:3 ~on_ready:(fun () -> ready := true);
  Alcotest.(check bool) "not yet" false
    (Placement.has_secondary cl.Cluster.placement ~part:0 ~node:3);
  Engine.run_all cl.Cluster.engine ();
  Alcotest.(check bool) "installed" true
    (Placement.has_secondary cl.Cluster.placement ~part:0 ~node:3);
  Alcotest.(check bool) "callback fired" true !ready

let test_add_replica_idempotent () =
  let cl = mk_cluster () in
  let fired = ref 0 in
  (* Node 1 already has a secondary of partition 0. *)
  Cluster.add_replica cl ~part:0 ~node:1 ~on_ready:(fun () -> incr fired);
  Alcotest.(check int) "immediate" 1 !fired;
  Alcotest.(check int) "no migration" 0 cl.Cluster.migration_count

let test_add_replica_evicts_at_max () =
  let cfg = { Config.default with Config.max_replicas = 2 } in
  let cl = mk_cluster ~cfg () in
  (* Partition 0 already has 2 replicas (nodes 0, 1); adding on node 2
     must evict the node-1 secondary. *)
  Cluster.add_replica cl ~part:0 ~node:2 ~on_ready:(fun () -> ());
  Engine.run_all cl.Cluster.engine ();
  Alcotest.(check int) "still at max" 2 (Placement.replica_count cl.Cluster.placement 0);
  Alcotest.(check bool) "new replica present" true
    (Placement.has_secondary cl.Cluster.placement ~part:0 ~node:2)

let test_access_frequency_tracking () =
  let cl = mk_cluster () in
  for _ = 1 to 10 do
    Cluster.touch_partition cl 0
  done;
  Cluster.touch_partition cl 1;
  Alcotest.(check (float 1e-9)) "hottest is 1.0" 1.0 (Cluster.normalized_freq cl 0);
  Alcotest.(check (float 1e-9)) "colder fraction" 0.1 (Cluster.normalized_freq cl 1);
  Cluster.decay_access cl 0.5;
  Alcotest.(check (float 1e-9)) "decay preserves ratio" 0.1 (Cluster.normalized_freq cl 1)

let test_rpc_consumes_remote_service () =
  let cl = mk_cluster () in
  let finished = ref (-1.0) in
  Cluster.rpc cl ~src:0 ~dst:1 ~bytes:128 ~work:10.0 (fun () ->
      finished := Engine.now cl.Cluster.engine);
  Engine.run_all cl.Cluster.engine ();
  (* 2 one-way trips + 10 µs service, with the default 60 µs latency. *)
  Alcotest.(check bool) "took at least 2 RT + work" true (!finished >= 130.0);
  Alcotest.(check bool) "remote service busy time" true
    (Float.abs (Lion_sim.Server.busy_time cl.Cluster.services.(1) -. 10.0) < 1e-6)

let test_replicate_commit_charges_bytes () =
  let cl = mk_cluster () in
  Cluster.replicate_commit cl [ 0; 1 ];
  Alcotest.(check bool) "bytes charged" true
    (Lion_sim.Network.total_bytes cl.Cluster.network > 0)

(* --- placement stats --- *)

module Placement_stats = Lion_store.Placement_stats

let test_stats_pp_renders () =
  let p = mk ~partitions:3 () in
  let s = Format.asprintf "%a" Placement_stats.pp p in
  Alcotest.(check bool) "lists primaries" true
    (let contains hay needle =
       let n = String.length needle in
       let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
       go 0
     in
     contains s "N0: P0*" && contains s "N1:")

let test_stats_counts () =
  let p = mk () in
  Alcotest.(check (array int)) "primaries per node" [| 2; 2; 2; 2 |]
    (Placement_stats.primaries_per_node p);
  Alcotest.(check (array int)) "replicas per node" [| 4; 4; 4; 4 |]
    (Placement_stats.replicas_per_node p);
  Alcotest.(check (float 1e-9)) "balanced layout" 1.0 (Placement_stats.imbalance p)

let test_stats_imbalance_after_remaster () =
  let p = mk () in
  Placement.remaster p ~part:1 ~node:2;
  (* Node 2 now has 3 primaries over a mean of 2. *)
  Alcotest.(check (float 1e-9)) "max/mean" 1.5 (Placement_stats.imbalance p)

let test_stats_coverage_and_colocation () =
  let p = mk () in
  (* Pair (0,1): node 1 holds a replica of both (covered), but the
     primaries live on nodes 0 and 1 (not colocated). *)
  Alcotest.(check (float 1e-9)) "covered" 1.0 (Placement_stats.coverage p [ [ 0; 1 ] ]);
  Alcotest.(check (float 1e-9)) "not colocated" 0.0
    (Placement_stats.colocated p [ [ 0; 1 ] ]);
  Placement.remaster p ~part:0 ~node:1;
  Alcotest.(check (float 1e-9)) "colocated after remaster" 1.0
    (Placement_stats.colocated p [ [ 0; 1 ] ]);
  (* Pair (0,2) has no common node in the default layout. *)
  Alcotest.(check (float 1e-9)) "half covered" 0.5
    (Placement_stats.coverage p [ [ 0; 1 ]; [ 0; 2 ] ])

(* --- replication log --- *)

module Replication = Lion_store.Replication

let test_replication_appends_counted () =
  let e = Engine.create () in
  let r = Replication.create ~interval:10_000.0 ~partitions:4 e in
  Replication.append r ~part:0;
  Replication.append r ~part:0;
  Replication.append r ~part:1;
  Alcotest.(check int) "per-partition" 2 (Replication.appends r ~part:0);
  Alcotest.(check int) "other partition" 1 (Replication.appends r ~part:1);
  Alcotest.(check int) "grand total" 3 (Replication.total_appends r)

let test_replication_lag_window () =
  let e = Engine.create () in
  let r = Replication.create ~interval:10_000.0 ~partitions:2 e in
  Replication.append r ~part:0;
  (* Within the sync window: still lagging. *)
  Alcotest.(check int) "fresh record lags" 1 (Replication.lag r ~part:0);
  (* Move past the sync delay: secondaries have acknowledged. *)
  Engine.run_until e (Replication.sync_delay r +. 20_000.0);
  Alcotest.(check int) "acked after delay" 0 (Replication.lag r ~part:0);
  Alcotest.(check int) "history retained" 1 (Replication.appends r ~part:0)

let test_commit_feeds_replication_log () =
  let cl = mk_cluster () in
  Cluster.replicate_commit cl [ 3; 7 ];
  Alcotest.(check int) "log grew" 1 (Replication.appends cl.Cluster.replication ~part:3);
  Alcotest.(check int) "both partitions" 1 (Replication.appends cl.Cluster.replication ~part:7)

let test_remaster_bytes_scale_with_lag () =
  let cl = mk_cluster () in
  let bytes_before = Lion_sim.Network.total_bytes cl.Cluster.network in
  (* Build up lag on partition 0, then remaster it. *)
  for _ = 1 to 100 do
    Cluster.replicate_commit cl [ 0 ]
  done;
  let after_replication = Lion_sim.Network.total_bytes cl.Cluster.network in
  let target = Placement.secondaries cl.Cluster.placement 0 |> List.hd in
  ignore (Cluster.try_begin_remaster cl ~part:0 ~node:target);
  let after_remaster = Lion_sim.Network.total_bytes cl.Cluster.network in
  let log_bytes = after_remaster - after_replication in
  Alcotest.(check bool) "replication charged" true (after_replication > bytes_before);
  (* 100 lagging records x 64 bytes. *)
  Alcotest.(check int) "lag shipped" (100 * 64) log_bytes

(* --- failure / recovery --- *)

let test_fail_node_drops_secondaries () =
  let cl = mk_cluster () in
  (* Node 1 holds the secondary of partition 0. *)
  Cluster.fail_node cl 1;
  Alcotest.(check bool) "dead" false (Cluster.alive cl 1);
  Alcotest.(check (list int)) "secondary dropped" [] (Placement.secondaries cl.Cluster.placement 0);
  Alcotest.(check (list int)) "three survivors" [ 0; 2; 3 ] (Cluster.alive_nodes cl)

let test_fail_node_promotes_survivor () =
  let cl = mk_cluster () in
  (* Partition 1: primary node 1, secondary node 2. *)
  Cluster.fail_node cl 1;
  Alcotest.(check bool) "blocked during election" true (Cluster.partition_wait cl 1 > 0.0);
  Engine.run_until cl.Cluster.engine (Engine.seconds 1.0);
  Alcotest.(check int) "survivor promoted" 2 (Placement.primary cl.Cluster.placement 1);
  Alcotest.(check (float 1e-9)) "available again" 0.0 (Cluster.partition_wait cl 1)

let test_fail_node_idempotent () =
  let cl = mk_cluster () in
  Cluster.fail_node cl 1;
  Cluster.fail_node cl 1;
  Engine.run_until cl.Cluster.engine (Engine.seconds 1.0);
  Alcotest.(check bool) "still consistent" true
    (Placement.primary cl.Cluster.placement 1 <> 1)

let test_orphaned_partition_blocks_until_recovery () =
  let cfg = { Config.default with Config.replicas = 1 } in
  let cl = Cluster.create ~seed:5 cfg in
  (* Single replica: partition 1's only copy is on node 1. *)
  Cluster.fail_node cl 1;
  Alcotest.(check bool) "unavailable" true (Cluster.partition_wait cl 1 = infinity);
  Cluster.recover_node cl 1;
  Engine.run_until cl.Cluster.engine (Engine.seconds 1.0);
  Alcotest.(check bool) "available after recovery" true
    (Cluster.partition_wait cl 1 < infinity);
  Alcotest.(check int) "primary unchanged" 1 (Placement.primary cl.Cluster.placement 1)

let test_lion_survives_failover () =
  let cl = mk_cluster () in
  let proto = Lion_core.Standard.create ~seed:2 cl in
  let engine = cl.Cluster.engine in
  let gen =
    Lion_workload.Ycsb.create
      {
        (Lion_workload.Ycsb.default_params
           ~partitions:(Cluster.partition_count cl)
           ~nodes:(Cluster.node_count cl))
        with
        Lion_workload.Ycsb.cross_ratio = 0.5;
      }
  in
  let rec loop () =
    proto.Lion_protocols.Proto.submit (Lion_workload.Ycsb.next gen) ~on_done:(fun () ->
        Engine.schedule engine ~delay:0.0 loop)
  in
  for _ = 1 to 32 do
    loop ()
  done;
  Engine.at engine ~time:(Engine.seconds 0.5) (fun () -> Cluster.fail_node cl 2);
  Engine.run_until engine (Engine.seconds 2.0);
  let commits_at_1s = Lion_sim.Metrics.commits cl.Cluster.metrics in
  Engine.run_until engine (Engine.seconds 3.0);
  let commits_at_2s = Lion_sim.Metrics.commits cl.Cluster.metrics in
  Alcotest.(check bool) "commits continue after failure" true
    (commits_at_2s > commits_at_1s);
  (* Nothing is mastered on the dead node. *)
  Alcotest.(check (list int)) "no primaries on dead node" []
    (Placement.parts_primary_on cl.Cluster.placement 2)

(* --- RPC timeouts, retries and chaos invariants --- *)

let test_rpc_dead_node_times_out () =
  let cl = mk_cluster () in
  Cluster.fail_node cl 1;
  let failed_at = ref (-1.0) and delivered = ref false in
  Cluster.rpc cl ~src:0 ~dst:1 ~bytes:64 ~work:5.0
    ~on_fail:(fun () -> failed_at := Engine.now cl.Cluster.engine)
    (fun () -> delivered := true);
  Engine.run_all cl.Cluster.engine ();
  Alcotest.(check bool) "success continuation never ran" false !delivered;
  (* Attempts start at 0, 5200, 10600 and 16400 µs: each times out
     after the 5000 µs rpc_timeout, with exponential backoffs of
     200/400/800 µs between attempts. *)
  Alcotest.(check (float 1e-6)) "gave up after the retry budget" 21_400.0 !failed_at;
  Alcotest.(check int) "three retries" 3 (Lion_sim.Metrics.retries cl.Cluster.metrics);
  Alcotest.(check int) "one timeout" 1 (Lion_sim.Metrics.timeouts cl.Cluster.metrics);
  Alcotest.(check int) "every attempt dropped" 4 (Lion_sim.Metrics.drops cl.Cluster.metrics)

let test_rpc_retry_succeeds_after_recovery () =
  let cl = mk_cluster () in
  Cluster.fail_node cl 1;
  let delivered_at = ref (-1.0) and failed = ref false in
  Cluster.rpc cl ~src:0 ~dst:1 ~bytes:0 ~work:0.0
    ~on_fail:(fun () -> failed := true)
    (fun () -> delivered_at := Engine.now cl.Cluster.engine);
  Engine.schedule cl.Cluster.engine ~delay:3_000.0 (fun () -> Cluster.recover_node cl 1);
  Engine.run_all cl.Cluster.engine ();
  Alcotest.(check bool) "no failure surfaced" false !failed;
  (* First attempt lost at t=0, timer at 5000, backoff 200; the retry
     at 5200 finds the node recovered: two 60 µs one-way trips later. *)
  Alcotest.(check (float 1e-6)) "retry delivered" 5_320.0 !delivered_at;
  Alcotest.(check int) "one retry" 1 (Lion_sim.Metrics.retries cl.Cluster.metrics);
  Alcotest.(check int) "no timeout" 0 (Lion_sim.Metrics.timeouts cl.Cluster.metrics)

let test_submit_local_dead_node_fails () =
  let cl = mk_cluster () in
  Cluster.fail_node cl 1;
  let failed = ref false and ran = ref false in
  Cluster.submit_local cl ~node:1 ~work:5.0
    ~on_fail:(fun () -> failed := true)
    (fun () -> ran := true);
  Engine.run_all cl.Cluster.engine ();
  Alcotest.(check bool) "work refused" false !ran;
  Alcotest.(check bool) "on_fail called" true !failed

let test_crash_fails_queued_worker_requests () =
  (* A crash must fail-fast work already parked in the dead node's
     worker queue — the queued request's [on_fail] fires at the crash
     instant rather than the request waiting forever (or executing on a
     corpse). *)
  let cl = mk_cluster () in
  let workers = Config.default.Config.workers_per_node in
  for _ = 1 to workers do
    Cluster.acquire_worker cl ~node:1 (fun _lease -> ())
  done;
  let failed = ref false and granted = ref false in
  Cluster.acquire_worker cl ~node:1
    ~on_fail:(fun () -> failed := true)
    (fun _lease -> granted := true);
  Alcotest.(check bool) "request parked behind the full pool" false !failed;
  Cluster.fail_node cl 1;
  Alcotest.(check bool) "queued request failed at the crash instant" true !failed;
  Alcotest.(check bool) "never granted" false !granted;
  (* After the crash, new requests are refused on arrival too. *)
  let failed2 = ref false in
  Cluster.acquire_worker cl ~node:1
    ~on_fail:(fun () -> failed2 := true)
    (fun _lease -> ());
  Alcotest.(check bool) "post-crash request refused on arrival" true !failed2;
  Engine.run_all cl.Cluster.engine ()

let test_failed_remaster_keeps_cooldown () =
  let cl = mk_cluster () in
  Cluster.add_replica cl ~part:0 ~node:2 ~on_ready:(fun () -> ());
  Engine.run_all cl.Cluster.engine ();
  Alcotest.(check bool) "starts" true (Cluster.try_begin_remaster cl ~part:0 ~node:1);
  (* The target dies mid-transfer: the remaster must fail, leave the
     primary in place and roll back the cooldown stamp. *)
  Cluster.fail_node cl 1;
  Engine.run_all cl.Cluster.engine ();
  Alcotest.(check int) "primary unchanged" 0 (Placement.primary cl.Cluster.placement 0);
  Alcotest.(check int) "not counted" 0 cl.Cluster.remaster_count;
  Alcotest.(check bool) "cooldown not burned" true
    (Cluster.try_begin_remaster cl ~part:0 ~node:2)

let test_remaster_during_partition () =
  (* The remaster target is partitioned away from the rest of the
     cluster mid-transfer: the lag ship is Blocked by the fault layer,
     so the promotion must not happen (a primary whose log suffix never
     arrived would serve stale state). When the partition heals the old
     primary is still the only primary and the cooldown has not been
     consumed by the failed attempt. *)
  let cfg =
    {
      Config.default with
      Config.fault_plan =
        [ Lion_sim.Fault.partition ~groups:[ [ 1 ]; [ 0; 2; 3 ] ] ~from_:0.0 ~until:2_000.0 ];
    }
  in
  let cl = mk_cluster ~cfg () in
  (* Node 1 is the secondary of partition 0 in the default layout. *)
  Alcotest.(check bool) "starts" true (Cluster.try_begin_remaster cl ~part:0 ~node:1);
  Engine.run_until cl.Cluster.engine 3_000.0;
  Alcotest.(check int) "primary unchanged" 0 (Placement.primary cl.Cluster.placement 0);
  Alcotest.(check bool) "target still a secondary, not a second primary" true
    (Placement.has_secondary cl.Cluster.placement ~part:0 ~node:1);
  Alcotest.(check int) "not counted" 0 cl.Cluster.remaster_count;
  (* Healed: the retry is admitted immediately — the failed attempt did
     not burn the partition's remaster cooldown. *)
  Alcotest.(check bool) "cooldown not burned" true
    (Cluster.try_begin_remaster cl ~part:0 ~node:1);
  Engine.run_all cl.Cluster.engine ();
  Alcotest.(check int) "retry succeeds after heal" 1 (Placement.primary cl.Cluster.placement 0)

let test_election_purges_dead_secondary () =
  let cl = mk_cluster () in
  (* Partition 1: primary node 1, secondary node 2. *)
  Cluster.fail_node cl 1;
  Engine.run_until cl.Cluster.engine (Engine.seconds 1.0);
  Alcotest.(check int) "survivor promoted" 2 (Placement.primary cl.Cluster.placement 1);
  Alcotest.(check bool) "dead node purged from secondaries" false
    (Placement.has_secondary cl.Cluster.placement ~part:1 ~node:1);
  for part = 0 to Cluster.partition_count cl - 1 do
    List.iter
      (fun n -> Alcotest.(check bool) "all secondaries live" true (Cluster.alive cl n))
      (Placement.secondaries cl.Cluster.placement part)
  done

let test_recover_resync_charges_network () =
  let cfg = { Config.default with Config.replicas = 1 } in
  let cl = Cluster.create ~seed:5 cfg in
  Cluster.fail_node cl 1;
  let before = Lion_sim.Network.total_bytes cl.Cluster.network in
  Cluster.recover_node cl 1;
  Alcotest.(check bool) "resync bytes charged" true
    (Lion_sim.Network.total_bytes cl.Cluster.network > before);
  (* The rejoined primary pays the election delay plus the log-suffix
     transfer before serving again. *)
  Alcotest.(check bool) "blocked past election delay" true
    (Cluster.partition_wait cl 1 > Config.default.Config.election_delay);
  Engine.run_until cl.Cluster.engine (Engine.seconds 1.0);
  Alcotest.(check (float 1e-9)) "serveable after resync" 0.0 (Cluster.partition_wait cl 1)

let test_availability_tracks_failures () =
  let cl = mk_cluster () in
  Alcotest.(check (float 1e-9)) "healthy cluster" 1.0 (Cluster.availability cl);
  Cluster.fail_node cl 1;
  let degraded = Cluster.availability cl in
  Alcotest.(check bool) "degraded on failure" true (degraded < 1.0 && degraded > 0.0);
  Engine.run_until cl.Cluster.engine (Engine.seconds 1.0);
  Cluster.recover_node cl 1;
  Engine.run_until cl.Cluster.engine (Engine.seconds 2.0);
  Alcotest.(check (float 1e-9)) "restored after recovery" 1.0 (Cluster.availability cl)

let test_fault_plan_drives_cluster () =
  let cfg =
    {
      Config.default with
      Config.fault_plan =
        Lion_sim.Fault.crash_recover ~node:1 ~at:(Engine.seconds 1.0)
          ~downtime:(Engine.seconds 1.0);
    }
  in
  let cl = Cluster.create ~seed:5 cfg in
  Engine.run_until cl.Cluster.engine (Engine.seconds 1.5);
  Alcotest.(check bool) "crashed by plan" false (Cluster.alive cl 1);
  Engine.run_until cl.Cluster.engine (Engine.seconds 3.0);
  Alcotest.(check bool) "recovered by plan" true (Cluster.alive cl 1)

let prop_fault_sequence_placement_consistent =
  QCheck.Test.make
    ~name:"any crash/recover sequence leaves placement consistent" ~count:60
    QCheck.(
      list_of_size (Gen.int_range 0 12)
        (triple bool (int_range 0 3) (float_range 0.0 20_000.0)))
    (fun ops ->
      let cl = Cluster.create ~seed:7 Config.default in
      List.iter
        (fun (fail, node, advance) ->
          if fail then Cluster.fail_node cl node else Cluster.recover_node cl node;
          Engine.run_until cl.Cluster.engine (Engine.now cl.Cluster.engine +. advance))
        ops;
      Engine.run_all cl.Cluster.engine ();
      let ok = ref true in
      for part = 0 to Cluster.partition_count cl - 1 do
        (* A dead primary is only legal for a partition explicitly
           parked as unavailable; secondaries never sit on dead nodes. *)
        let prim = Placement.primary cl.Cluster.placement part in
        if not (Cluster.alive cl prim) then
          ok := !ok && Cluster.partition_wait cl part = infinity;
        List.iter
          (fun n -> ok := !ok && Cluster.alive cl n)
          (Placement.secondaries cl.Cluster.placement part)
      done;
      !ok)

(* --- elastic membership (docs/MEMBERSHIP.md) --- *)

let mk_elastic ?(rate = 200.0) () =
  let cfg =
    { (Config.with_elastic_defaults Config.default) with Config.rebalance_rate = rate }
  in
  (cfg, Cluster.create ~seed:5 cfg)

let test_join_node_populates () =
  let _cfg, cl = mk_elastic () in
  Alcotest.(check int) "initial members" 4 (Cluster.member_count cl);
  Alcotest.(check bool) "standby not alive" false (Cluster.alive cl 4);
  let v = cl.Cluster.membership_version in
  Alcotest.(check bool) "join accepted" true (Cluster.join_node cl 4);
  Alcotest.(check bool) "join idempotent refused" false (Cluster.join_node cl 4);
  Alcotest.(check bool) "out of range refused" false (Cluster.join_node cl 6);
  Alcotest.(check int) "five members" 5 (Cluster.member_count cl);
  Alcotest.(check bool) "version bumped" true (cl.Cluster.membership_version > v);
  Engine.run_all cl.Cluster.engine ();
  (* The balance pass populates the newcomer one bounded step at a time. *)
  Alcotest.(check bool) "replicas moved onto joiner" true
    (Placement.replicas_on cl.Cluster.placement 4 > 0);
  Alcotest.(check bool) "migrations counted" true (cl.Cluster.rebalance_migrations > 0)

let test_decommission_drains_fully () =
  let cfg, cl = mk_elastic () in
  Alcotest.(check bool) "accepted" true (Cluster.decommission_node cl 3);
  Alcotest.(check bool) "double decommission refused" false (Cluster.decommission_node cl 3);
  Alcotest.(check bool) "still a member while draining" true cl.Cluster.member.(3);
  Engine.run_all cl.Cluster.engine ();
  Alcotest.(check bool) "left the membership" false cl.Cluster.member.(3);
  Alcotest.(check int) "completion counted" 1 cl.Cluster.decommission_count;
  Alcotest.(check int) "node emptied" 0 (Placement.replicas_on cl.Cluster.placement 3);
  for part = 0 to Cluster.partition_count cl - 1 do
    let prim = Placement.primary cl.Cluster.placement part in
    Alcotest.(check bool) "primary off the drained node" true (prim <> 3);
    Alcotest.(check int) "replication factor restored" cfg.Config.replicas
      (Placement.replica_count cl.Cluster.placement part)
  done

let test_decommission_floor_refused () =
  let _cfg, cl = mk_elastic () in
  (* Drain down to the floor: with replicas = 2 a decommission needs at
     least 2 other live eligible members, so the fourth-to-last and
     third-to-last leave but the second-to-last is refused. *)
  Alcotest.(check bool) "4 -> 3 accepted" true (Cluster.decommission_node cl 3);
  Engine.run_all cl.Cluster.engine ();
  Alcotest.(check bool) "3 -> 2 accepted" true (Cluster.decommission_node cl 2);
  Engine.run_all cl.Cluster.engine ();
  Alcotest.(check int) "two members left" 2 (Cluster.member_count cl);
  Alcotest.(check bool) "2 -> 1 refused" false (Cluster.decommission_node cl 1);
  Alcotest.(check bool) "non-member refused" false (Cluster.decommission_node cl 3)

(* Satellite: a replica install whose target crashed and rejoined
   mid-copy is a stale-session stream. Tagged sessions reject it (and
   count it); untagged sessions accept it and leave the divergence
   signature — believed watermark caught up, durable watermark empty. *)
let test_stale_install_rejected_when_tagged () =
  let cfg = { Config.default with Config.session_tagging = true } in
  let cl = Cluster.create ~seed:5 cfg in
  for _ = 1 to 5 do
    Lion_store.Replication.append cl.Cluster.replication ~part:0
  done;
  Cluster.add_replica cl ~part:0 ~node:3 ~on_ready:(fun () -> ());
  (* Crash + rejoin before the 200 ms copy completes: the install's
     session now predates node 3's incarnation. *)
  Cluster.fail_node cl 3;
  Cluster.recover_node cl 3;
  Engine.run_all cl.Cluster.engine ();
  Alcotest.(check bool) "install dropped" false
    (Placement.has_secondary cl.Cluster.placement ~part:0 ~node:3);
  Alcotest.(check int) "rejection counted" 1
    (Lion_sim.Metrics.stale_ack_rejections cl.Cluster.metrics)

let test_stale_install_accepted_when_untagged () =
  let cl = Cluster.create ~seed:5 Config.default in
  let repl = cl.Cluster.replication in
  for _ = 1 to 5 do
    Lion_store.Replication.append repl ~part:0
  done;
  Cluster.add_replica cl ~part:0 ~node:3 ~on_ready:(fun () -> ());
  Cluster.fail_node cl 3;
  Cluster.recover_node cl 3;
  Engine.run_all cl.Cluster.engine ();
  Alcotest.(check bool) "stale install accepted" true
    (Placement.has_secondary cl.Cluster.placement ~part:0 ~node:3);
  (* The corruption signature the divergence audit looks for. *)
  Alcotest.(check int) "believed caught up" 5
    (Lion_store.Replication.applied repl ~part:0 ~node:3);
  Alcotest.(check int) "storage durably empty" 0
    (Lion_store.Replication.durable repl ~part:0 ~node:3);
  Alcotest.(check int) "nothing rejected" 0
    (Lion_sim.Metrics.stale_ack_rejections cl.Cluster.metrics)

(* Satellite: a node that was remastered away from (through Placement
   directly, planner-style) while down must not resurrect its stale
   demoted copy at recovery — recover_node purges it and counts it. *)
let test_recover_purges_stale_secondary () =
  let cl = Cluster.create ~seed:5 Config.default in
  (* Partition 1: primary node 1, secondary node 2. *)
  Cluster.fail_node cl 1;
  Placement.remaster cl.Cluster.placement ~part:1 ~node:2;
  Alcotest.(check bool) "demoted in place" true
    (Placement.has_secondary cl.Cluster.placement ~part:1 ~node:1);
  Cluster.recover_node cl 1;
  Alcotest.(check bool) "stale copy purged" false
    (Placement.has_secondary cl.Cluster.placement ~part:1 ~node:1);
  Alcotest.(check int) "purge counted" 1
    (Lion_sim.Metrics.replica_purges cl.Cluster.metrics);
  Engine.run_all cl.Cluster.engine ();
  Alcotest.(check bool) "no double purge" true
    (Lion_sim.Metrics.replica_purges cl.Cluster.metrics = 1)

(* Satellite: the remaster target dying mid-transfer must clear the
   inflight flag and roll back the cooldown immediately, leaving the
   completion timer a no-op. *)
let test_remaster_cancelled_when_target_dies () =
  let cfg = { Config.default with Config.replicas = 3 } in
  let cl = Cluster.create ~seed:5 cfg in
  (* Partition 0: primary 0, secondaries 1 and 2. *)
  Alcotest.(check bool) "starts" true (Cluster.try_begin_remaster cl ~part:0 ~node:1);
  Cluster.fail_node cl 1;
  Alcotest.(check bool) "inflight cleared eagerly" false cl.Cluster.remaster_inflight.(0);
  (* The cooldown was rolled back too: a retry to the surviving
     secondary is admitted immediately, not [remaster_cooldown] later. *)
  Alcotest.(check bool) "retry admitted at once" true
    (Cluster.try_begin_remaster cl ~part:0 ~node:2);
  Engine.run_all cl.Cluster.engine ();
  Alcotest.(check int) "retry promoted" 2 (Placement.primary cl.Cluster.placement 0);
  Alcotest.(check int) "only the retry counted" 1 cl.Cluster.remaster_count

let prop_membership_interleaving =
  QCheck.Test.make
    ~name:
      "any join/decommission/crash/rejoin interleaving converges to full replication"
    ~count:40
    QCheck.(
      list_of_size (Gen.int_range 0 10)
        (triple (int_range 0 3) (int_range 0 5) (float_range 0.0 300_000.0)))
    (fun ops ->
      let cfg, cl = mk_elastic () in
      List.iter
        (fun (kind, node, advance) ->
          (match kind with
          | 0 -> ignore (Cluster.join_node cl node)
          | 1 ->
              (* Keep enough members for the factor; decommission_node
                 has its own live-eligible floor on top. *)
              if Cluster.member_count cl > cfg.Config.replicas + 1 then
                ignore (Cluster.decommission_node cl node)
          | 2 -> Cluster.fail_node cl node
          | _ -> Cluster.recover_node cl node);
          Engine.run_until cl.Cluster.engine (Engine.now cl.Cluster.engine +. advance))
        ops;
      (* Rejoin every crashed member, then let the rebalancer converge. *)
      Array.iteri
        (fun n m -> if m && not (Cluster.alive cl n) then Cluster.recover_node cl n)
        cl.Cluster.member;
      Engine.run_all cl.Cluster.engine ();
      let ok = ref true in
      for part = 0 to Cluster.partition_count cl - 1 do
        let prim = Placement.primary cl.Cluster.placement part in
        let holders =
          prim :: Placement.secondaries cl.Cluster.placement part
          |> List.sort_uniq compare
        in
        (* Exactly one live primary, exactly [replicas] live copies. *)
        ok := !ok && Cluster.alive cl prim;
        ok := !ok && List.length holders = cfg.Config.replicas;
        List.iter (fun n -> ok := !ok && Cluster.alive cl n) holders
      done;
      !ok)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "lion_store"
    [
      ( "placement",
        [
          Alcotest.test_case "round robin layout" `Quick test_round_robin_layout;
          Alcotest.test_case "replica counts" `Quick test_replica_counts;
          Alcotest.test_case "remaster swaps" `Quick test_remaster_swaps;
          Alcotest.test_case "remaster noop on primary" `Quick test_remaster_noop_on_primary;
          Alcotest.test_case "remaster requires replica" `Quick test_remaster_requires_replica;
          Alcotest.test_case "add secondary" `Quick test_add_secondary;
          Alcotest.test_case "max replicas enforced" `Quick test_add_secondary_respects_max;
          Alcotest.test_case "remove secondary" `Quick test_remove_secondary;
          Alcotest.test_case "best local node" `Quick test_best_local_node;
          Alcotest.test_case "best local prefers primaries" `Quick
            test_best_local_prefers_primaries;
          Alcotest.test_case "parts primary on" `Quick test_parts_primary_on;
          Alcotest.test_case "count helpers" `Quick test_count_helpers;
          Alcotest.test_case "copy isolated" `Quick test_copy_isolated;
        ] );
      qsuite "placement-props" [ test_placement_invariant_random_ops ];
      ( "occ",
        [
          Alcotest.test_case "fresh versions" `Quick test_versions_start_at_zero;
          Alcotest.test_case "commit bumps" `Quick test_commit_bumps_versions;
          Alcotest.test_case "conflict detected" `Quick test_validate_detects_conflict;
          Alcotest.test_case "no false conflicts" `Quick test_validate_passes_without_conflict;
          Alcotest.test_case "reserve excludes writers" `Quick
            test_reserve_blocks_concurrent_writers;
          Alcotest.test_case "release unblocks" `Quick test_release_reservation_unblocks;
          Alcotest.test_case "reader blocked by pending" `Quick
            test_reader_blocked_by_pending_write;
          Alcotest.test_case "write is RMW" `Quick test_write_is_rmw;
          Alcotest.test_case "read/write sets" `Quick test_read_write_sets;
          Alcotest.test_case "sparse storage" `Quick test_touched_keys_sparse;
        ] );
      qsuite "occ-props" [ test_occ_serializability_property ];
      ( "cluster",
        [
          Alcotest.test_case "shape" `Quick test_cluster_shape;
          Alcotest.test_case "remaster blocks partition" `Quick test_remaster_blocks_partition;
          Alcotest.test_case "remaster conflict refused" `Quick test_remaster_conflict_refused;
          Alcotest.test_case "remaster cooldown" `Quick test_remaster_cooldown;
          Alcotest.test_case "remaster needs replica" `Quick
            test_remaster_without_replica_refused;
          Alcotest.test_case "add replica background" `Quick test_add_replica_background;
          Alcotest.test_case "add replica idempotent" `Quick test_add_replica_idempotent;
          Alcotest.test_case "eviction at max replicas" `Quick test_add_replica_evicts_at_max;
          Alcotest.test_case "access frequency" `Quick test_access_frequency_tracking;
          Alcotest.test_case "rpc via remote service pool" `Quick
            test_rpc_consumes_remote_service;
          Alcotest.test_case "replication bytes" `Quick test_replicate_commit_charges_bytes;
        ] );
      ( "placement-stats",
        [
          Alcotest.test_case "counts" `Quick test_stats_counts;
          Alcotest.test_case "imbalance" `Quick test_stats_imbalance_after_remaster;
          Alcotest.test_case "coverage/colocation" `Quick test_stats_coverage_and_colocation;
          Alcotest.test_case "pp renders" `Quick test_stats_pp_renders;
        ] );
      ( "replication",
        [
          Alcotest.test_case "appends counted" `Quick test_replication_appends_counted;
          Alcotest.test_case "lag window" `Quick test_replication_lag_window;
          Alcotest.test_case "commit feeds log" `Quick test_commit_feeds_replication_log;
          Alcotest.test_case "remaster ships lag" `Quick test_remaster_bytes_scale_with_lag;
        ] );
      ( "failover",
        [
          Alcotest.test_case "failure drops secondaries" `Quick
            test_fail_node_drops_secondaries;
          Alcotest.test_case "failover promotes survivor" `Quick
            test_fail_node_promotes_survivor;
          Alcotest.test_case "failure idempotent" `Quick test_fail_node_idempotent;
          Alcotest.test_case "orphan blocks until recovery" `Quick
            test_orphaned_partition_blocks_until_recovery;
          Alcotest.test_case "Lion survives failover" `Quick test_lion_survives_failover;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "rpc to dead node times out" `Quick
            test_rpc_dead_node_times_out;
          Alcotest.test_case "rpc retry succeeds after recovery" `Quick
            test_rpc_retry_succeeds_after_recovery;
          Alcotest.test_case "submit_local refuses dead node" `Quick
            test_submit_local_dead_node_fails;
          Alcotest.test_case "crash fails queued worker requests" `Quick
            test_crash_fails_queued_worker_requests;
          Alcotest.test_case "failed remaster keeps cooldown" `Quick
            test_failed_remaster_keeps_cooldown;
          Alcotest.test_case "remaster during partition" `Quick
            test_remaster_during_partition;
          Alcotest.test_case "election purges dead secondary" `Quick
            test_election_purges_dead_secondary;
          Alcotest.test_case "recovery resync charges network" `Quick
            test_recover_resync_charges_network;
          Alcotest.test_case "availability tracks failures" `Quick
            test_availability_tracks_failures;
          Alcotest.test_case "fault plan drives cluster" `Quick
            test_fault_plan_drives_cluster;
        ] );
      qsuite "chaos-props" [ prop_fault_sequence_placement_consistent ];
      ( "membership",
        [
          Alcotest.test_case "join populates" `Quick test_join_node_populates;
          Alcotest.test_case "decommission drains fully" `Quick
            test_decommission_drains_fully;
          Alcotest.test_case "decommission floor refused" `Quick
            test_decommission_floor_refused;
          Alcotest.test_case "stale install rejected (tagged)" `Quick
            test_stale_install_rejected_when_tagged;
          Alcotest.test_case "stale install accepted (untagged)" `Quick
            test_stale_install_accepted_when_untagged;
          Alcotest.test_case "recovery purges stale secondary" `Quick
            test_recover_purges_stale_secondary;
          Alcotest.test_case "remaster cancelled on target death" `Quick
            test_remaster_cancelled_when_target_dies;
        ] );
      qsuite "membership-props" [ prop_membership_interleaving ];
    ]
