(* Tests for the workload generators: transaction structure, YCSB
   distribution knobs, TPC-C shapes, dynamic schedules. *)

module Txn = Lion_workload.Txn
module Ycsb = Lion_workload.Ycsb
module Tpcc = Lion_workload.Tpcc
module Dynamic = Lion_workload.Dynamic
module Kvstore = Lion_store.Kvstore

let base = Ycsb.default_params ~partitions:16 ~nodes:4

(* --- txn --- *)

let test_txn_parts_dedup_sorted () =
  let k part slot = Kvstore.key ~part ~slot in
  let t =
    Txn.make ~id:0 [ Txn.Read (k 3 1); Txn.Write (k 1 2); Txn.Read (k 3 9) ]
  in
  Alcotest.(check (list int)) "sorted distinct" [ 1; 3 ] t.Txn.parts;
  Alcotest.(check bool) "cross" true (Txn.is_cross_partition t)

let test_txn_single_partition () =
  let k slot = Kvstore.key ~part:2 ~slot in
  let t = Txn.make ~id:1 [ Txn.Read (k 1); Txn.Write (k 2) ] in
  Alcotest.(check bool) "not cross" false (Txn.is_cross_partition t);
  Alcotest.(check (list int)) "one part" [ 2 ] t.Txn.parts

let test_txn_key_partition () =
  let t =
    Txn.make ~id:2
      [ Txn.Read (Kvstore.key ~part:5 ~slot:0); Txn.Write (Kvstore.key ~part:5 ~slot:1) ]
  in
  Alcotest.(check int) "read keys" 1 (List.length (Txn.read_keys t));
  Alcotest.(check int) "write keys" 1 (List.length (Txn.write_keys t))

(* --- ycsb --- *)

let test_ycsb_ops_count () =
  let gen = Ycsb.create base in
  for _ = 1 to 100 do
    let t = Ycsb.next gen in
    Alcotest.(check int) "10 ops" 10 (List.length t.Txn.ops)
  done

let test_ycsb_no_cross_when_zero () =
  let gen = Ycsb.create { base with Ycsb.cross_ratio = 0.0 } in
  for _ = 1 to 200 do
    Alcotest.(check bool) "single partition" false (Txn.is_cross_partition (Ycsb.next gen))
  done

let test_ycsb_all_cross_when_one () =
  let gen = Ycsb.create { base with Ycsb.cross_ratio = 1.0 } in
  for _ = 1 to 200 do
    let t = Ycsb.next gen in
    Alcotest.(check int) "two partitions" 2 (List.length t.Txn.parts)
  done

let test_ycsb_neighbor_pairs () =
  let gen = Ycsb.create { base with Ycsb.cross_ratio = 1.0; neighbor_cross = true } in
  for _ = 1 to 200 do
    let t = Ycsb.next gen in
    match t.Txn.parts with
    | [ a; b ] ->
        Alcotest.(check bool) "adjacent (mod wrap)" true (b = a + 1 || (a = 0 && b = 15))
    | _ -> Alcotest.fail "expected two partitions"
  done

let test_ycsb_neighbor_pairs_cross_nodes_initially () =
  (* Round-robin layout puts p and p+1 on different nodes, which is the
     paper's "100% distributed" premise. *)
  let gen = Ycsb.create { base with Ycsb.cross_ratio = 1.0 } in
  let placement =
    Lion_store.Placement.create ~nodes:4 ~partitions:16 ~replicas:1 ~max_replicas:4 ()
  in
  for _ = 1 to 100 do
    let t = Ycsb.next gen in
    match t.Txn.parts with
    | [ a; b ] ->
        Alcotest.(check bool) "split across nodes" true
          (Lion_store.Placement.primary placement a
          <> Lion_store.Placement.primary placement b)
    | _ -> Alcotest.fail "expected a pair"
  done

let test_ycsb_skew_concentrates () =
  let gen = Ycsb.create { base with Ycsb.skew_factor = 0.9 } in
  let counts = Array.make 16 0 in
  for _ = 1 to 5_000 do
    let t = Ycsb.next gen in
    List.iter (fun p -> counts.(p) <- counts.(p) + 1) t.Txn.parts
  done;
  (* Hot node 0's partitions are 0,4,8,12. *)
  let hot = counts.(0) + counts.(4) + counts.(8) + counts.(12) in
  let total = Array.fold_left ( + ) 0 counts in
  Alcotest.(check bool) "hot partitions dominate" true
    (float_of_int hot /. float_of_int total > 0.75)

let test_ycsb_uniform_spreads () =
  let gen = Ycsb.create { base with Ycsb.skew_factor = 0.0 } in
  let counts = Array.make 16 0 in
  for _ = 1 to 8_000 do
    let t = Ycsb.next gen in
    List.iter (fun p -> counts.(p) <- counts.(p) + 1) t.Txn.parts
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "every partition touched" true (c > 100))
    counts

let test_ycsb_partition_offset_shifts () =
  let gen =
    Ycsb.create { base with Ycsb.skew_factor = 1.0; hot_span = 1; partition_offset = 5 }
  in
  for _ = 1 to 100 do
    let t = Ycsb.next gen in
    Alcotest.(check (list int)) "hot partition rotated" [ 5 ] t.Txn.parts
  done

let test_ycsb_write_ratio_extremes () =
  let all_reads = Ycsb.create { base with Ycsb.write_ratio = 0.0 } in
  let t = Ycsb.next all_reads in
  Alcotest.(check int) "no writes" 0 (List.length (Txn.write_keys t));
  let all_writes = Ycsb.create { base with Ycsb.write_ratio = 1.0 } in
  let t = Ycsb.next all_writes in
  Alcotest.(check int) "all writes" 10 (List.length (Txn.write_keys t))

let test_ycsb_ids_increment () =
  let gen = Ycsb.create base in
  let a = Ycsb.next gen and b = Ycsb.next gen in
  Alcotest.(check int) "sequential ids" (a.Txn.id + 1) b.Txn.id

let test_ycsb_set_params_switches () =
  let gen = Ycsb.create { base with Ycsb.cross_ratio = 0.0 } in
  ignore (Ycsb.next gen);
  Ycsb.set_params gen { base with Ycsb.cross_ratio = 1.0 };
  let t = Ycsb.next gen in
  Alcotest.(check bool) "now cross" true (Txn.is_cross_partition t)

(* --- tpcc --- *)

let tpcc_base = Tpcc.default_params ~warehouses:16 ~nodes:4

let test_tpcc_neworder_shape () =
  let gen = Tpcc.create { tpcc_base with Tpcc.cross_ratio = 0.0 } in
  for _ = 1 to 50 do
    let t = Tpcc.next gen in
    let n = List.length t.Txn.ops in
    (* 4 header ops + 5..15 order lines. *)
    Alcotest.(check bool) "op count in range" true (n >= 9 && n <= 19);
    Alcotest.(check int) "single warehouse" 1 (List.length t.Txn.parts)
  done

let test_tpcc_cross_touches_remote () =
  let gen = Tpcc.create { tpcc_base with Tpcc.cross_ratio = 1.0 } in
  let crosses = ref 0 in
  for _ = 1 to 200 do
    if Txn.is_cross_partition (Tpcc.next gen) then incr crosses
  done;
  Alcotest.(check int) "all cross" 200 !crosses

let test_tpcc_district_hotspot () =
  let gen = Tpcc.create { tpcc_base with Tpcc.cross_ratio = 0.0 } in
  let t = Tpcc.next gen in
  let district_slots = List.init 10 Tpcc.Layout.district_slot in
  let has_district_write =
    List.exists
      (function
        | Txn.Write k -> List.mem k.Kvstore.slot district_slots
        | Txn.Read _ -> false)
      t.Txn.ops
  in
  Alcotest.(check bool) "district RMW present" true has_district_write

let test_tpcc_orders_unique () =
  let gen = Tpcc.create tpcc_base in
  let t1 = Tpcc.next gen and t2 = Tpcc.next gen in
  let order_slots txn =
    List.filter_map
      (function
        | Txn.Write k when k.Kvstore.slot >= 10_000_000 -> Some k.Kvstore.slot
        | _ -> None)
      txn.Txn.ops
  in
  let all = order_slots t1 @ order_slots t2 in
  Alcotest.(check int) "order rows never collide" (List.length all)
    (List.length (List.sort_uniq compare all))

let test_tpcc_payment_mix () =
  let gen = Tpcc.create { tpcc_base with Tpcc.payment_ratio = 1.0 } in
  for _ = 1 to 50 do
    let t = Tpcc.next gen in
    Alcotest.(check int) "payment has 3 ops" 3 (List.length t.Txn.ops)
  done

let test_tpcc_skew_concentrates () =
  let gen = Tpcc.create { tpcc_base with Tpcc.skew_factor = 1.0; hot_span = 1 } in
  for _ = 1 to 50 do
    let t = Tpcc.next gen in
    Alcotest.(check bool) "home is hot warehouse" true (List.mem 0 t.Txn.parts)
  done

let test_tpcc_full_mix_shapes () =
  let gen = Tpcc.create ~seed:3 { tpcc_base with Tpcc.full_mix = true } in
  let saw_readonly = ref false and saw_delivery = ref false in
  for _ = 1 to 500 do
    let t = Tpcc.next gen in
    let writes = List.length (Txn.write_keys t) in
    if writes = 0 then saw_readonly := true;
    (* Delivery writes 2 rows per district = 20 writes exactly. *)
    if writes = 20 then saw_delivery := true
  done;
  Alcotest.(check bool) "read-only txns appear" true !saw_readonly;
  Alcotest.(check bool) "delivery bursts appear" true !saw_delivery

let test_tpcc_full_mix_ratio () =
  let gen = Tpcc.create ~seed:5 { tpcc_base with Tpcc.full_mix = true } in
  let neworder = ref 0 in
  let n = 2000 in
  for _ = 1 to n do
    let t = Tpcc.next gen in
    (* NewOrder inserts an order row. *)
    if
      List.exists
        (function
          | Txn.Write k -> k.Kvstore.slot >= 10_000_000
          | Txn.Read _ -> false)
        t.Txn.ops
    then incr neworder
  done;
  let ratio = float_of_int !neworder /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "NewOrder near 45%% (%.2f)" ratio)
    true
    (ratio > 0.38 && ratio < 0.52)

let test_tpcc_layout_disjoint () =
  Alcotest.(check bool) "warehouse/district disjoint" true
    (Tpcc.Layout.warehouse_slot < Tpcc.Layout.district_slot 0);
  Alcotest.(check bool) "district/customer disjoint" true
    (Tpcc.Layout.district_slot 9 < Tpcc.Layout.customer_slot 0);
  Alcotest.(check bool) "customer/stock disjoint" true
    (Tpcc.Layout.customer_slot 29_999 < Tpcc.Layout.stock_slot 0);
  Alcotest.(check bool) "stock/order disjoint" true
    (Tpcc.Layout.stock_slot 99_999 < Tpcc.Layout.order_slot 0)

let test_ycsb_workload_mixes () =
  let mix c = Ycsb.workload_mix ~partitions:16 ~nodes:4 c in
  Alcotest.(check (float 1e-9)) "A write-heavy" 0.5 (mix 'A').Ycsb.write_ratio;
  Alcotest.(check (float 1e-9)) "B read-mostly" 0.05 (mix 'B').Ycsb.write_ratio;
  Alcotest.(check (float 1e-9)) "C read-only" 0.0 (mix 'C').Ycsb.write_ratio;
  Alcotest.(check (float 1e-9)) "D steeper zipf" 0.99 (mix 'd').Ycsb.key_theta;
  Alcotest.check_raises "unknown letter"
    (Invalid_argument "Ycsb.workload_mix: unknown workload Z") (fun () ->
      ignore (mix 'Z'))

(* --- smallbank --- *)

module Smallbank = Lion_workload.Smallbank

let sb_base = Smallbank.default_params ~partitions:16 ~nodes:4

let test_smallbank_single_account_local () =
  let gen = Smallbank.create { sb_base with Smallbank.two_account_ratio = 0.0 } in
  for _ = 1 to 100 do
    let t = Smallbank.next gen in
    Alcotest.(check int) "single partition" 1 (List.length t.Txn.parts);
    Alcotest.(check bool) "1-3 ops" true
      (List.length t.Txn.ops >= 1 && List.length t.Txn.ops <= 3)
  done

let test_smallbank_two_account_crosses () =
  let gen = Smallbank.create { sb_base with Smallbank.two_account_ratio = 1.0 } in
  for _ = 1 to 100 do
    let t = Smallbank.next gen in
    match t.Txn.parts with
    | [ a; b ] -> Alcotest.(check bool) "partner is neighbour" true (b = a + 1 || (a = 0 && b = 15))
    | _ -> Alcotest.fail "expected two partitions"
  done

let test_smallbank_slots_distinct () =
  Alcotest.(check bool) "checking/savings disjoint" true
    (Smallbank.Layout.checking_slot 5 <> Smallbank.Layout.savings_slot 5);
  Alcotest.(check bool) "accounts disjoint" true
    (Smallbank.Layout.savings_slot 5 <> Smallbank.Layout.checking_slot 6)

let test_smallbank_skew () =
  let gen =
    Smallbank.create { sb_base with Smallbank.skew_factor = 1.0; hot_span = 1 }
  in
  for _ = 1 to 50 do
    let t = Smallbank.next gen in
    Alcotest.(check bool) "home is hot" true (List.mem 0 t.Txn.parts)
  done

(* --- dynamic --- *)

let sec = Lion_sim.Engine.seconds

let test_dynamic_phase_lookup () =
  let schedule = Dynamic.hotspot_position ~base ~period:(sec 10.0) in
  Alcotest.(check string) "phase A" "A:uniform-50"
    (Dynamic.phase_at schedule (sec 5.0)).Dynamic.name;
  Alcotest.(check string) "phase C" "C:skew-100"
    (Dynamic.phase_at schedule (sec 25.0)).Dynamic.name;
  Alcotest.(check string) "wraps to A" "A:uniform-50"
    (Dynamic.phase_at schedule (sec 45.0)).Dynamic.name

let test_dynamic_cycle_length () =
  let schedule = Dynamic.hotspot_position ~base ~period:(sec 10.0) in
  Alcotest.(check (float 1e-3)) "4 periods" (sec 40.0) (Dynamic.cycle_length schedule)

let test_dynamic_interval_shifts_hotspot () =
  let schedule = Dynamic.hotspot_interval ~base ~period:(sec 10.0) in
  let p0 = Dynamic.params_at schedule (sec 1.0) in
  let p1 = Dynamic.params_at schedule (sec 11.0) in
  Alcotest.(check bool) "offset moved" true
    (p0.Ycsb.partition_offset <> p1.Ycsb.partition_offset)

let test_dynamic_driver_switches_generator () =
  let schedule = Dynamic.hotspot_position ~base ~period:(sec 10.0) in
  let driver = Dynamic.Driver.create ~schedule ~gen:(Ycsb.create base) in
  (* Phase C is 100% cross. *)
  let t = Dynamic.Driver.next driver ~time:(sec 25.0) in
  ignore t;
  let crosses = ref 0 in
  for _ = 1 to 100 do
    if Txn.is_cross_partition (Dynamic.Driver.next driver ~time:(sec 25.0)) then incr crosses
  done;
  Alcotest.(check int) "C is all cross" 100 !crosses;
  Alcotest.(check string) "phase name" "C:skew-100"
    (Dynamic.Driver.phase_name driver ~time:(sec 25.0))

let test_dynamic_nonoverlapping_hotspots () =
  let schedule = Dynamic.hotspot_interval ~base ~period:(sec 10.0) in
  let parts_of time =
    let gen = Ycsb.create (Dynamic.params_at schedule time) in
    let s = Hashtbl.create 16 in
    for _ = 1 to 500 do
      List.iter (fun p -> Hashtbl.replace s p ()) (Ycsb.next gen).Txn.parts
    done;
    Hashtbl.fold (fun p () acc -> p :: acc) s []
  in
  let p0 = parts_of (sec 1.0) and p1 = parts_of (sec 11.0) in
  let overlap = List.filter (fun p -> List.mem p p1) p0 in
  (* Hotspot thirds are distinct; only the pair-neighbour boundary may
     overlap slightly. *)
  Alcotest.(check bool) "mostly disjoint" true
    (List.length overlap <= 2 + (List.length p0 / 4))

(* --- property tests --- *)

let prop_ycsb_keys_in_bounds =
  QCheck.Test.make ~name:"ycsb keys stay within configured bounds" ~count:100
    QCheck.(
      quad (int_range 1 32) (float_range 0.0 1.0) (float_range 0.0 1.0) (int_range 0 100))
    (fun (partitions, skew, cross, seed) ->
      let params =
        {
          (Ycsb.default_params ~partitions ~nodes:4) with
          Ycsb.skew_factor = skew;
          cross_ratio = cross;
          keys_per_partition = 1000;
        }
      in
      let gen = Ycsb.create ~seed params in
      List.for_all
        (fun _ ->
          let t = Ycsb.next gen in
          List.for_all
            (fun op ->
              let k = Txn.key_of op in
              k.Kvstore.part >= 0 && k.Kvstore.part < partitions && k.Kvstore.slot >= 0
              && k.Kvstore.slot < 1000)
            t.Txn.ops)
        (List.init 20 Fun.id))

let prop_ycsb_parts_match_ops =
  QCheck.Test.make ~name:"txn parts equal distinct op partitions" ~count:100
    QCheck.(pair (float_range 0.0 1.0) (int_range 0 100))
    (fun (cross, seed) ->
      let gen = Ycsb.create ~seed { base with Ycsb.cross_ratio = cross } in
      List.for_all
        (fun _ ->
          let t = Ycsb.next gen in
          t.Txn.parts = Txn.parts_of_ops t.Txn.ops)
        (List.init 20 Fun.id))

let prop_tpcc_within_warehouse_bounds =
  QCheck.Test.make ~name:"tpcc partitions stay within warehouse count" ~count:100
    QCheck.(triple (int_range 1 32) (float_range 0.0 1.0) (int_range 0 100))
    (fun (warehouses, cross, seed) ->
      let params =
        { (Tpcc.default_params ~warehouses ~nodes:4) with Tpcc.cross_ratio = cross }
      in
      let gen = Tpcc.create ~seed params in
      List.for_all
        (fun _ ->
          let t = Tpcc.next gen in
          List.for_all (fun p -> p >= 0 && p < warehouses) t.Txn.parts)
        (List.init 20 Fun.id))

let () =
  Alcotest.run "lion_workload"
    [
      ( "txn",
        [
          Alcotest.test_case "parts dedup+sort" `Quick test_txn_parts_dedup_sorted;
          Alcotest.test_case "single partition" `Quick test_txn_single_partition;
          Alcotest.test_case "read/write key split" `Quick test_txn_key_partition;
        ] );
      ( "ycsb",
        [
          Alcotest.test_case "op count" `Quick test_ycsb_ops_count;
          Alcotest.test_case "cross 0" `Quick test_ycsb_no_cross_when_zero;
          Alcotest.test_case "cross 1" `Quick test_ycsb_all_cross_when_one;
          Alcotest.test_case "neighbor pairing" `Quick test_ycsb_neighbor_pairs;
          Alcotest.test_case "pairs split across nodes" `Quick
            test_ycsb_neighbor_pairs_cross_nodes_initially;
          Alcotest.test_case "skew concentrates" `Quick test_ycsb_skew_concentrates;
          Alcotest.test_case "uniform spreads" `Quick test_ycsb_uniform_spreads;
          Alcotest.test_case "partition offset" `Quick test_ycsb_partition_offset_shifts;
          Alcotest.test_case "write ratio extremes" `Quick test_ycsb_write_ratio_extremes;
          Alcotest.test_case "ids increment" `Quick test_ycsb_ids_increment;
          Alcotest.test_case "set_params switches" `Quick test_ycsb_set_params_switches;
          Alcotest.test_case "workload mixes" `Quick test_ycsb_workload_mixes;
        ] );
      ( "tpcc",
        [
          Alcotest.test_case "neworder shape" `Quick test_tpcc_neworder_shape;
          Alcotest.test_case "cross touches remote" `Quick test_tpcc_cross_touches_remote;
          Alcotest.test_case "district hotspot" `Quick test_tpcc_district_hotspot;
          Alcotest.test_case "orders unique" `Quick test_tpcc_orders_unique;
          Alcotest.test_case "payment mix" `Quick test_tpcc_payment_mix;
          Alcotest.test_case "skew concentrates" `Quick test_tpcc_skew_concentrates;
          Alcotest.test_case "full mix shapes" `Quick test_tpcc_full_mix_shapes;
          Alcotest.test_case "full mix ratio" `Quick test_tpcc_full_mix_ratio;
          Alcotest.test_case "layout disjoint" `Quick test_tpcc_layout_disjoint;
        ] );
      ( "smallbank",
        [
          Alcotest.test_case "single account local" `Quick test_smallbank_single_account_local;
          Alcotest.test_case "two-account crosses" `Quick test_smallbank_two_account_crosses;
          Alcotest.test_case "slot layout" `Quick test_smallbank_slots_distinct;
          Alcotest.test_case "skew" `Quick test_smallbank_skew;
        ] );
      ( "dynamic",
        [
          Alcotest.test_case "phase lookup" `Quick test_dynamic_phase_lookup;
          Alcotest.test_case "cycle length" `Quick test_dynamic_cycle_length;
          Alcotest.test_case "interval shifts hotspot" `Quick
            test_dynamic_interval_shifts_hotspot;
          Alcotest.test_case "driver switches" `Quick test_dynamic_driver_switches_generator;
          Alcotest.test_case "non-overlapping hotspots" `Quick
            test_dynamic_nonoverlapping_hotspots;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_ycsb_keys_in_bounds;
            prop_ycsb_parts_match_ops;
            prop_tpcc_within_warehouse_bounds;
          ] );
    ]
