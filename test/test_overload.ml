(* Fixed-seed overload and graceful-degradation tests
   (docs/OVERLOAD.md): open-loop driving is deterministic and honest
   about offered load, the metastable-failure repro keeps its shape
   (unprotected goodput stays collapsed after the trigger, protected
   recovers), and retry budgets + breakers + deadlines win goodput past
   saturation. *)

module Config = Lion_store.Config
module Runner = Lion_harness.Runner
module Overload = Lion_harness.Overload
module Workloads = Lion_harness.Workloads

let twopc cl = Lion_protocols.Twopc.create cl

let open_loop ~seed ~rate ~duration =
  let cfg = Config.default in
  Runner.run ~seed ~cfg ~make:twopc
    ~gen:(Workloads.ycsb ~seed ~skew:0.8 ~cross:0.5 cfg)
    {
      Runner.quick with
      warmup = 0.5;
      duration;
      arrival = Runner.Poisson rate;
    }

let test_open_loop_deterministic () =
  let a = open_loop ~seed:9 ~rate:15_000.0 ~duration:1.0
  and b = open_loop ~seed:9 ~rate:15_000.0 ~duration:1.0 in
  Alcotest.(check int) "commits" a.Runner.commits b.Runner.commits;
  Alcotest.(check int) "aborts" a.Runner.aborts b.Runner.aborts;
  Alcotest.(check (float 0.0)) "p99 bit-identical" a.Runner.p99 b.Runner.p99;
  Alcotest.(check (float 0.0)) "offered bit-identical" a.Runner.offered
    b.Runner.offered

let test_open_loop_offered_tracks_rate () =
  let r = open_loop ~seed:4 ~rate:10_000.0 ~duration:2.0 in
  let err = Float.abs (r.Runner.offered -. 10_000.0) /. 10_000.0 in
  Alcotest.(check bool) "offered within 10% of the Poisson rate" true
    (err < 0.1);
  (* Below saturation the system keeps up: goodput tracks offered. *)
  Alcotest.(check bool) "keeps up below saturation" true
    (r.Runner.goodput > 0.9 *. r.Runner.offered)

let test_uniform_arrivals_deterministic_gap () =
  (* A 1000 txn/s deterministic process over 1 s of measurement admits
     1000 +/- 1 transactions — no randomness in the gaps at all. *)
  let cfg = Config.default in
  let r =
    Runner.run ~seed:2 ~cfg ~make:twopc
      ~gen:(Workloads.ycsb ~seed:2 ~skew:0.8 ~cross:0.5 cfg)
      {
        Runner.quick with
        warmup = 0.5;
        duration = 1.0;
        arrival = Runner.Uniform 1_000.0;
      }
  in
  Alcotest.(check bool) "arrival count exact" true
    (Float.abs (r.Runner.offered -. 1_000.0) <= 1.0)

let test_metastable_shape () =
  match Overload.metastable_pair ~seed:1 ~scale:0.35 () with
  | [ unprot; prot ] ->
      Alcotest.(check bool) "peaks sane" true
        (unprot.Overload.peak > 0.0 && prot.Overload.peak > 0.0);
      (* The acceptance shape: without budgets goodput stays under 50%
         of peak long after the trigger cleared; with budgets +
         breakers + enforced deadlines it recovers past 90%. *)
      Alcotest.(check bool)
        (Printf.sprintf "unprotected stays collapsed (tail/peak %.2f)"
           (unprot.Overload.tail /. unprot.Overload.peak))
        true
        (unprot.Overload.tail < 0.5 *. unprot.Overload.peak);
      Alcotest.(check bool)
        (Printf.sprintf "protected recovers (tail/peak %.2f)"
           (prot.Overload.tail /. prot.Overload.peak))
        true
        (prot.Overload.tail > 0.9 *. prot.Overload.peak);
      (* The mechanism: only the protected side sheds its zombie
         backlog; the unprotected side keeps committing stale work. *)
      Alcotest.(check int) "unprotected never gives up" 0
        unprot.Overload.result.Runner.deadline_giveups;
      Alcotest.(check bool) "protected sheds the backlog" true
        (prot.Overload.result.Runner.deadline_giveups > 0);
      Alcotest.(check bool) "unprotected commits go stale instead" true
        (unprot.Overload.result.Runner.deadline_misses > 0)
  | _ -> Alcotest.fail "metastable_pair returned wrong arity"

let test_budget_wins_past_saturation () =
  let goodput protect =
    match
      (Overload.sweep_one ~seed:1 ~scale:0.25 ~protect ~ratios:[ 1.5 ]
         Overload.twopc_spec)
        .Overload.points
    with
    | [ p ] -> p.Overload.result.Runner.goodput
    | _ -> Alcotest.fail "expected exactly one sweep point"
  in
  let unprot = goodput false and prot = goodput true in
  Alcotest.(check bool)
    (Printf.sprintf "protected goodput %.0f >= unprotected %.0f at 1.5x" prot
       unprot)
    true (prot >= unprot)

let () =
  Alcotest.run "lion_overload"
    [
      ( "open-loop",
        [
          Alcotest.test_case "deterministic" `Quick test_open_loop_deterministic;
          Alcotest.test_case "offered tracks rate" `Quick
            test_open_loop_offered_tracks_rate;
          Alcotest.test_case "uniform arrivals" `Quick
            test_uniform_arrivals_deterministic_gap;
        ] );
      ( "graceful-degradation",
        [
          Alcotest.test_case "metastable shape" `Slow test_metastable_shape;
          Alcotest.test_case "budgets win past saturation" `Slow
            test_budget_wins_past_saturation;
        ] );
    ]
