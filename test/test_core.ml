(* Tests for lion_core: the cost-model router, the planner's analysis
   round, and Lion's standard/batch execution behaviour. *)

module Config = Lion_store.Config
module Cluster = Lion_store.Cluster
module Placement = Lion_store.Placement
module Kvstore = Lion_store.Kvstore
module Engine = Lion_sim.Engine
module Metrics = Lion_sim.Metrics
module Txn = Lion_workload.Txn
module Ycsb = Lion_workload.Ycsb
module Proto = Lion_protocols.Proto
module Planner = Lion_core.Planner
module Router = Lion_core.Router
module Costmodel = Lion_analysis.Costmodel

let small_cfg =
  {
    Config.default with
    Config.nodes = 2;
    partitions_per_node = 2;
    workers_per_node = 2;
    batch_size = 32;
  }

let key part slot = Kvstore.key ~part ~slot
let txn ?(id = 0) ops = Txn.make ~id ops

let no_predict =
  { Planner.default_config with Planner.predict = false; use_lstm = false }

(* --- router --- *)

let test_router_prefers_all_primaries () =
  let cl = Cluster.create ~seed:1 small_cfg in
  let router = Router.create cl (Costmodel.make ~freq:(fun _ -> 0.0) ()) in
  (* Partitions 0 and 2 are both primary on node 0. *)
  Alcotest.(check int) "node with both primaries" 0
    (Router.route router (txn [ Txn.Read (key 0 0); Txn.Read (key 2 0) ]))

let test_router_prefers_secondary_over_absent () =
  let cfg = { small_cfg with Config.nodes = 3; partitions_per_node = 1 } in
  let cl = Cluster.create ~seed:1 cfg in
  (* Partition 0: primary n0, secondary n1; partition 1: primary n1,
     secondary n2. Node 1 covers both; nodes 0 and 2 cover one each. *)
  let router = Router.create cl (Costmodel.make ~freq:(fun _ -> 0.0) ()) in
  Alcotest.(check int) "full-coverage node" 1
    (Router.route router (txn [ Txn.Read (key 0 0); Txn.Read (key 1 0) ]))

let test_router_stable_for_same_parts () =
  let cl = Cluster.create ~seed:1 small_cfg in
  let router = Router.create cl (Costmodel.make ~freq:(fun _ -> 0.0) ()) in
  let t = txn [ Txn.Read (key 0 0); Txn.Read (key 1 0) ] in
  let first = Router.route router t in
  for _ = 1 to 10 do
    Alcotest.(check int) "same parts same node" first (Router.route router t)
  done

let test_router_skips_dead_nodes () =
  let cl = Cluster.create ~seed:1 small_cfg in
  let router = Router.create cl (Costmodel.make ~freq:(fun _ -> 0.0) ()) in
  let t = txn [ Txn.Read (key 0 0); Txn.Read (key 2 0) ] in
  Alcotest.(check int) "prefers node 0" 0 (Router.route router t);
  Cluster.fail_node cl 0;
  Alcotest.(check int) "falls over to live node" 1 (Router.route router t)

let test_read_at_secondary_serves_locally () =
  let cl = Cluster.create ~seed:1 small_cfg in
  (* Read-only cross transaction; node 0 holds a secondary of 1. *)
  let t = txn [ Txn.Read (key 0 1); Txn.Read (key 1 1) ] in
  let proto = Lion_core.Standard.create ~read_at_secondary:true ~config:no_predict cl in
  let done_ = ref false in
  proto.Proto.submit t ~on_done:(fun () -> done_ := true);
  Engine.run_until cl.Cluster.engine (Engine.seconds 1.0);
  Alcotest.(check bool) "committed" true !done_;
  Alcotest.(check int) "single node without promotion" 1
    (Metrics.single_node_commits cl.Cluster.metrics);
  Alcotest.(check int) "no remaster happened" 0 cl.Cluster.remaster_count

let test_read_at_secondary_writes_still_promote () =
  let cl = Cluster.create ~seed:1 small_cfg in
  let t = txn [ Txn.Write (key 0 1); Txn.Write (key 1 1) ] in
  let proto = Lion_core.Standard.create ~read_at_secondary:true ~config:no_predict cl in
  let done_ = ref false in
  proto.Proto.submit t ~on_done:(fun () -> done_ := true);
  Engine.run_until cl.Cluster.engine (Engine.seconds 1.0);
  Alcotest.(check bool) "committed" true !done_;
  Alcotest.(check bool) "write path still remasters" true (cl.Cluster.remaster_count > 0)

(* --- planner --- *)

let feed_pairs planner cl ~pairs ~count =
  for i = 1 to count do
    List.iter
      (fun (a, b) ->
        let t = txn ~id:i [ Txn.Write (key a i); Txn.Write (key b i) ] in
        List.iter (fun p -> Cluster.touch_partition cl p) t.Txn.parts;
        Planner.observe planner t)
      pairs
  done

let test_planner_colocates_pair () =
  let cl = Cluster.create ~seed:1 small_cfg in
  let planner = Planner.create no_predict cl in
  (* Partitions 0 (primary n0) and 1 (primary n1) heavily co-accessed:
     after one analysis round some node must hold both primaries (the
     eager plan) or at least a replica of both. *)
  feed_pairs planner cl ~pairs:[ (0, 1) ] ~count:100;
  Planner.tick planner;
  Engine.run_all cl.Cluster.engine ();
  let p = cl.Cluster.placement in
  let colocated =
    Placement.primary p 0 = Placement.primary p 1
  in
  Alcotest.(check bool) "pair colocated after plan" true colocated;
  Alcotest.(check int) "one analysis round" 1 (Planner.rounds planner)

let test_planner_balances_two_pairs () =
  let cfg = { small_cfg with Config.partitions_per_node = 4 } in
  let cl = Cluster.create ~seed:1 cfg in
  let planner = Planner.create no_predict cl in
  (* Two independent hot pairs: they must not land on the same node. *)
  feed_pairs planner cl ~pairs:[ (0, 1); (4, 5) ] ~count:100;
  Planner.tick planner;
  Engine.run_all cl.Cluster.engine ();
  let p = cl.Cluster.placement in
  Alcotest.(check bool) "pair 1 colocated" true
    (Placement.primary p 0 = Placement.primary p 1);
  Alcotest.(check bool) "pair 2 colocated" true
    (Placement.primary p 4 = Placement.primary p 5);
  Alcotest.(check bool) "pairs on different nodes" true
    (Placement.primary p 0 <> Placement.primary p 4)

let test_planner_idempotent_when_converged () =
  let cl = Cluster.create ~seed:1 small_cfg in
  let planner = Planner.create no_predict cl in
  feed_pairs planner cl ~pairs:[ (0, 1) ] ~count:100;
  Planner.tick planner;
  Engine.run_all cl.Cluster.engine ();
  (* Same workload again: the new plan must require no migrations. *)
  feed_pairs planner cl ~pairs:[ (0, 1) ] ~count:100;
  Planner.tick planner;
  Alcotest.(check int) "no further replica adds" 0 (Planner.last_plan_adds planner)

let test_planner_last_wv_zero_without_prediction () =
  let cl = Cluster.create ~seed:1 small_cfg in
  let planner = Planner.create no_predict cl in
  Planner.tick planner;
  Alcotest.(check (float 0.0)) "wv off" 0.0 (Planner.last_wv planner)

(* --- Lion standard protocol end-to-end --- *)

let drive ?(seconds = 3.0) ?(cfg = small_cfg) make gen =
  let cl = Cluster.create ~seed:4 cfg in
  let proto = make cl in
  let engine = cl.Cluster.engine in
  let rec loop () =
    proto.Proto.submit (gen ()) ~on_done:(fun () ->
        Engine.schedule engine ~delay:0.0 loop)
  in
  for _ = 1 to 16 do
    loop ()
  done;
  let rec tick () =
    Engine.schedule engine ~delay:(Engine.seconds 0.5) (fun () ->
        proto.Proto.tick ();
        tick ())
  in
  tick ();
  Engine.run_until engine (Engine.seconds seconds);
  cl

let pair_gen () =
  let i = ref 0 in
  fun () ->
    incr i;
    txn ~id:!i [ Txn.Write (key 0 !i); Txn.Write (key 1 !i) ]

let test_lion_standard_converts_to_single_node () =
  let cl =
    drive (fun cl -> Lion_core.Standard.create ~config:no_predict cl) (pair_gen ())
  in
  let total = Metrics.commits cl.Cluster.metrics in
  let single = Metrics.single_node_commits cl.Cluster.metrics in
  Alcotest.(check bool) "commits" true (total > 0);
  Alcotest.(check bool)
    (Printf.sprintf "mostly single-node after adaptation (%d/%d)" single total)
    true
    (float_of_int single /. float_of_int total > 0.6)

let test_lion_standard_beats_2pc_on_recurring_pairs () =
  let run make = Metrics.commits (drive make (pair_gen ())).Cluster.metrics in
  let lion = run (fun cl -> Lion_core.Standard.create ~config:no_predict cl) in
  let twopc = run Lion_protocols.Twopc.create in
  Alcotest.(check bool)
    (Printf.sprintf "lion %d > 2pc %d" lion twopc)
    true
    (float_of_int lion > 1.2 *. float_of_int twopc)

(* --- Lion batch protocol --- *)

let test_lion_batch_converts_and_commits () =
  let cl =
    drive (fun cl -> Lion_core.Batch_mode.create ~config:no_predict cl) (pair_gen ())
  in
  let total = Metrics.commits cl.Cluster.metrics in
  Alcotest.(check bool) "commits" true (total > 0);
  Alcotest.(check bool) "single-node majority" true
    (float_of_int (Metrics.single_node_commits cl.Cluster.metrics) /. float_of_int total
    > 0.6)

let test_lion_batch_remaster_overlap_single_barrier () =
  (* A batch wanting many remasters pays a single remaster barrier, so
     its epoch latency stays far below n_remasters × delay. *)
  let cfg = { small_cfg with Config.batch_size = 8 } in
  let cl = Cluster.create ~seed:4 cfg in
  let proto = Lion_core.Batch_mode.create ~config:no_predict cl in
  let commit_at = ref [] in
  for i = 0 to 7 do
    (* Pairs (0,1) and (2,3): both need a remaster on their routed node. *)
    let parts = if i mod 2 = 0 then (0, 1) else (2, 3) in
    proto.Proto.submit
      (txn ~id:i [ Txn.Write (key (fst parts) i); Txn.Write (key (snd parts) i) ])
      ~on_done:(fun () -> commit_at := Engine.now cl.Cluster.engine :: !commit_at)
  done;
  Engine.run_until cl.Cluster.engine (Engine.seconds 1.0);
  Alcotest.(check int) "all committed" 8 (List.length !commit_at);
  List.iter
    (fun t ->
      Alcotest.(check bool) "epoch bounded by one barrier" true
        (t < 2.0 *. Config.default.Config.remaster_delay +. 10_000.0))
    !commit_at

(* --- ablation factory --- *)

let test_ablation_names () =
  Alcotest.(check (list string))
    "Table II variants"
    [ "2PC"; "Lion(S)"; "Lion(R)"; "Lion(SW)"; "Lion(RW)"; "Lion(RB)"; "Lion" ]
    (List.map Lion_core.Ablation.name Lion_core.Ablation.all)

let test_ablation_constructs_all () =
  List.iter
    (fun v ->
      let cl = Cluster.create ~seed:2 small_cfg in
      let proto = Lion_core.Ablation.create ~use_lstm:false v cl in
      Alcotest.(check string) "name matches" (Lion_core.Ablation.name v) proto.Proto.name)
    Lion_core.Ablation.all

(* --- integration with YCSB generator --- *)

let test_lion_on_ycsb_uniform_cross () =
  let cfg = Config.default in
  let params =
    {
      (Ycsb.default_params ~partitions:(Config.total_partitions cfg) ~nodes:cfg.Config.nodes)
      with
      Ycsb.cross_ratio = 1.0;
    }
  in
  let gen = Ycsb.create ~seed:5 params in
  let cl =
    drive ~seconds:4.0 ~cfg
      (fun cl -> Lion_core.Standard.create ~config:no_predict cl)
      (fun () -> Ycsb.next gen)
  in
  let total = Metrics.commits cl.Cluster.metrics in
  Alcotest.(check bool) "substantial throughput" true (total > 10_000);
  Alcotest.(check bool) "conversion happened" true
    (Metrics.single_node_commits cl.Cluster.metrics > total / 4)

let () =
  Alcotest.run "lion_core"
    [
      ( "router",
        [
          Alcotest.test_case "prefers all primaries" `Quick test_router_prefers_all_primaries;
          Alcotest.test_case "prefers coverage" `Quick test_router_prefers_secondary_over_absent;
          Alcotest.test_case "stable routing" `Quick test_router_stable_for_same_parts;
          Alcotest.test_case "skips dead nodes" `Quick test_router_skips_dead_nodes;
          Alcotest.test_case "read-at-secondary local" `Quick
            test_read_at_secondary_serves_locally;
          Alcotest.test_case "writes still promote" `Quick
            test_read_at_secondary_writes_still_promote;
        ] );
      ( "planner",
        [
          Alcotest.test_case "colocates hot pair" `Quick test_planner_colocates_pair;
          Alcotest.test_case "balances independent pairs" `Quick test_planner_balances_two_pairs;
          Alcotest.test_case "idempotent when converged" `Quick
            test_planner_idempotent_when_converged;
          Alcotest.test_case "wv zero without prediction" `Quick
            test_planner_last_wv_zero_without_prediction;
        ] );
      ( "standard",
        [
          Alcotest.test_case "converts to single-node" `Slow
            test_lion_standard_converts_to_single_node;
          Alcotest.test_case "beats 2PC on recurring pairs" `Slow
            test_lion_standard_beats_2pc_on_recurring_pairs;
        ] );
      ( "batch",
        [
          Alcotest.test_case "converts and commits" `Slow test_lion_batch_converts_and_commits;
          Alcotest.test_case "remaster barrier overlaps" `Quick
            test_lion_batch_remaster_overlap_single_barrier;
        ] );
      ( "ablation",
        [
          Alcotest.test_case "names" `Quick test_ablation_names;
          Alcotest.test_case "constructs all" `Quick test_ablation_constructs_all;
        ] );
      ( "ycsb-e2e",
        [ Alcotest.test_case "uniform 100% cross" `Slow test_lion_on_ycsb_uniform_cross ] );
    ]
