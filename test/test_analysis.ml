(* Tests for the workload analysis stack: heat graph, clump generation,
   cost model (Eqs. 3-4), the rearrangement algorithm (Algorithm 1),
   plans and the Schism baseline. *)

module Heatgraph = Lion_analysis.Heatgraph
module Clump = Lion_analysis.Clump
module Costmodel = Lion_analysis.Costmodel
module Rearrange = Lion_analysis.Rearrange
module Plan = Lion_analysis.Plan
module Schism = Lion_analysis.Schism
module Placement = Lion_store.Placement

let mk_placement ?(nodes = 4) ?(partitions = 8) ?(replicas = 2) () =
  Placement.create ~nodes ~partitions ~replicas ~max_replicas:4 ()

(* --- heatgraph --- *)

let test_graph_accumulates () =
  let g = Heatgraph.create ~partitions:8 in
  Heatgraph.add_txn g ~parts:[ 0; 1 ];
  Heatgraph.add_txn g ~parts:[ 0; 1 ];
  Heatgraph.add_txn g ~parts:[ 2 ];
  Alcotest.(check (float 1e-9)) "vertex weight" 2.0 (Heatgraph.vertex_weight g 0);
  Alcotest.(check (float 1e-9)) "edge weight" 2.0 (Heatgraph.edge_weight g 0 1);
  Alcotest.(check (float 1e-9)) "symmetric" 2.0 (Heatgraph.edge_weight g 1 0);
  Alcotest.(check (float 1e-9)) "no edge" 0.0 (Heatgraph.edge_weight g 0 2)

let test_graph_triple_txn_pairs () =
  let g = Heatgraph.create ~partitions:8 in
  Heatgraph.add_txn g ~parts:[ 0; 1; 2 ];
  Alcotest.(check int) "three pairwise edges" 3 (Heatgraph.edge_count g);
  Alcotest.(check (float 1e-9)) "each pair" 1.0 (Heatgraph.edge_weight g 1 2)

let test_graph_cross_boost () =
  let g = Heatgraph.create ~partitions:8 in
  let p = mk_placement () in
  (* Partitions 0 and 4 share node 0; 0 and 1 are on different nodes. *)
  Heatgraph.add_txn g ~parts:[ 0; 4 ];
  Heatgraph.add_txn g ~parts:[ 0; 1 ];
  Alcotest.(check (float 1e-9)) "same node unboosted" 1.0
    (Heatgraph.effective_edge_weight g ~placement:p ~cross_boost:4.0 0 4);
  Alcotest.(check (float 1e-9)) "cross node boosted" 4.0
    (Heatgraph.effective_edge_weight g ~placement:p ~cross_boost:4.0 0 1)

let test_graph_predicted_merge () =
  let g = Heatgraph.create ~partitions:8 in
  Heatgraph.add_predicted g ~parts:[ 2; 3 ] ~weight:2.5;
  Alcotest.(check (float 1e-9)) "predicted edge" 2.5 (Heatgraph.edge_weight g 2 3);
  Heatgraph.add_predicted g ~parts:[ 2; 3 ] ~weight:0.0;
  Alcotest.(check (float 1e-9)) "zero weight ignored" 2.5 (Heatgraph.edge_weight g 2 3)

let test_graph_hottest_first () =
  let g = Heatgraph.create ~partitions:8 in
  Heatgraph.add_txn g ~parts:[ 5 ];
  Heatgraph.add_txn g ~parts:[ 3 ];
  Heatgraph.add_txn g ~parts:[ 3 ];
  Alcotest.(check (list int)) "sorted by heat" [ 3; 5 ] (Heatgraph.hottest_first g)

let test_graph_mean_edge_weight () =
  let g = Heatgraph.create ~partitions:8 in
  Heatgraph.add_txn g ~parts:[ 0; 1 ];
  Heatgraph.add_txn g ~parts:[ 0; 1 ];
  Heatgraph.add_txn g ~parts:[ 2; 3 ];
  Alcotest.(check (float 1e-9)) "mean" 1.5 (Heatgraph.mean_edge_weight g)

let test_graph_clear () =
  let g = Heatgraph.create ~partitions:4 in
  Heatgraph.add_txn g ~parts:[ 0; 1 ];
  Heatgraph.clear g;
  Alcotest.(check (float 1e-9)) "vertices cleared" 0.0 (Heatgraph.vertex_weight g 0);
  Alcotest.(check int) "edges cleared" 0 (Heatgraph.edge_count g)

(* --- clumps --- *)

let test_clumps_group_hot_pairs () =
  let g = Heatgraph.create ~partitions:8 in
  let p = mk_placement () in
  for _ = 1 to 10 do
    Heatgraph.add_txn g ~parts:[ 0; 1 ]
  done;
  Heatgraph.add_txn g ~parts:[ 2 ];
  let clumps = Clump.generate g ~placement:p ~alpha:5.0 ~cross_boost:1.0 in
  let pair = List.find (fun (c : Clump.t) -> List.length c.Clump.pids = 2) clumps in
  Alcotest.(check (list int)) "hot pair clumped" [ 0; 1 ] pair.Clump.pids;
  Alcotest.(check (float 1e-9)) "weight summed" 20.0 pair.Clump.w

let test_clumps_alpha_filters () =
  let g = Heatgraph.create ~partitions:8 in
  let p = mk_placement () in
  Heatgraph.add_txn g ~parts:[ 0; 1 ];
  let clumps = Clump.generate g ~placement:p ~alpha:5.0 ~cross_boost:1.0 in
  List.iter
    (fun (c : Clump.t) ->
      Alcotest.(check int) "weak edges give singletons" 1 (List.length c.Clump.pids))
    clumps

let test_clumps_cover_all_hot_vertices_once () =
  let g = Heatgraph.create ~partitions:16 in
  let p = mk_placement ~partitions:16 () in
  for i = 0 to 14 do
    Heatgraph.add_txn g ~parts:[ i; i + 1 ]
  done;
  let clumps = Clump.generate g ~placement:p ~alpha:0.5 ~cross_boost:1.0 in
  let all = List.concat_map (fun (c : Clump.t) -> c.Clump.pids) clumps in
  Alcotest.(check int) "every hot vertex once" 16 (List.length all);
  Alcotest.(check int) "no duplicates" 16 (List.length (List.sort_uniq compare all))

let test_clumps_max_weight_cap () =
  let g = Heatgraph.create ~partitions:16 in
  let p = mk_placement ~partitions:16 () in
  (* A chain: every consecutive pair heavily co-accessed. *)
  for i = 0 to 14 do
    for _ = 1 to 10 do
      Heatgraph.add_txn g ~parts:[ i; i + 1 ]
    done
  done;
  let clumps = Clump.generate ~max_weight:100.0 g ~placement:p ~alpha:1.0 ~cross_boost:1.0 in
  Alcotest.(check bool) "chain sliced" true (List.length clumps > 1);
  List.iter
    (fun (c : Clump.t) ->
      Alcotest.(check bool) "cap respected" true (c.Clump.w <= 100.0 +. 1e-9))
    clumps

let test_clump_total_weight () =
  let clumps =
    [ { Clump.pids = [ 0 ]; w = 3.0; dest = -1 }; { Clump.pids = [ 1 ]; w = 2.0; dest = -1 } ]
  in
  Alcotest.(check (float 1e-9)) "sum" 5.0 (Clump.total_weight clumps)

(* --- cost model --- *)

let freq_zero _ = 0.0

let test_cost_zero_when_primary_local () =
  let p = mk_placement () in
  let cm = Costmodel.make ~freq:freq_zero () in
  (* Partition 0's primary is node 0. *)
  Alcotest.(check (float 1e-9)) "free" 0.0
    (Costmodel.clump_cost cm p ~parts:[ 0 ] ~node:0)

let test_cost_remaster_when_secondary () =
  let p = mk_placement () in
  let cm = Costmodel.make ~w_r:1.0 ~w_m:10.0 ~freq:freq_zero () in
  (* Node 1 holds a secondary of partition 0; f = 0 so cnt_r = 1. *)
  Alcotest.(check (float 1e-9)) "w_r" 1.0 (Costmodel.clump_cost cm p ~parts:[ 0 ] ~node:1)

let test_cost_migration_when_absent () =
  let p = mk_placement () in
  let cm = Costmodel.make ~w_r:1.0 ~w_m:10.0 ~freq:freq_zero () in
  (* Node 3 has no replica of partition 0. *)
  Alcotest.(check (float 1e-9)) "w_m" 10.0 (Costmodel.clump_cost cm p ~parts:[ 0 ] ~node:3)

let test_cost_hot_primary_remaster_pricier () =
  let p = mk_placement () in
  let cm_hot = Costmodel.make ~freq:(fun _ -> 1.0) () in
  let cm_cold = Costmodel.make ~freq:freq_zero () in
  let hot = Costmodel.cnt_r cm_hot p ~part:0 ~node:1 in
  let cold = Costmodel.cnt_r cm_cold p ~part:0 ~node:1 in
  Alcotest.(check bool) "1+log2(f+1) grows" true (hot > cold);
  Alcotest.(check (float 1e-9)) "cold is 1" 1.0 cold;
  Alcotest.(check (float 1e-9)) "hot is 2" 2.0 hot

let test_find_dst_prefers_current_primary () =
  let p = mk_placement () in
  let cm = Costmodel.make ~freq:freq_zero () in
  let node, cost = Costmodel.find_dst_node cm p ~parts:[ 0; 4 ] in
  (* Both 0 and 4 have primaries on node 0. *)
  Alcotest.(check int) "home node" 0 node;
  Alcotest.(check (float 1e-9)) "zero cost" 0.0 cost

let test_route_cost_orders_options () =
  let p = mk_placement () in
  let cm = Costmodel.make ~w_r:1.0 ~w_m:10.0 ~freq:freq_zero () in
  (* Transaction on partitions 0 (primary n0, secondary n1) and
     1 (primary n1, secondary n2). *)
  let c0 = Costmodel.txn_route_cost cm p ~parts:[ 0; 1 ] ~node:0 in
  let c1 = Costmodel.txn_route_cost cm p ~parts:[ 0; 1 ] ~node:1 in
  let c3 = Costmodel.txn_route_cost cm p ~parts:[ 0; 1 ] ~node:3 in
  (* Node 1 holds primary of 1 and secondary of 0 -> one remaster.
     Node 0 holds primary of 0, nothing of 1 -> one remote access.
     Node 3 holds nothing -> two remote accesses. *)
  Alcotest.(check bool) "remaster cheaper than remote" true (c1 < c0);
  Alcotest.(check bool) "fewer replicas pricier" true (c0 < c3)

(* --- rearrangement (Algorithm 1) --- *)

let test_rearrange_respects_costs () =
  let p = mk_placement () in
  let cm = Costmodel.make ~freq:freq_zero () in
  let clumps = [ { Clump.pids = [ 0; 4 ]; w = 1.0; dest = -1 } ] in
  let r = Rearrange.rearrange cm p clumps () in
  Alcotest.(check int) "stays at free node" 0 (snd (List.hd r.Rearrange.assignments))

let test_rearrange_balances_load () =
  let p = mk_placement ~partitions:16 () in
  let cm = Costmodel.make ~freq:freq_zero () in
  (* Eight equal clumps whose primaries all sit on node 0 — without
     fine-tuning they would all stay there. *)
  let clumps =
    List.init 8 (fun i -> { Clump.pids = [ (i * 4) mod 16 ]; w = 10.0; dest = -1 })
  in
  let r = Rearrange.rearrange cm p clumps ~epsilon:0.1 () in
  let avg = 80.0 /. 4.0 in
  Alcotest.(check bool) "balanced" true r.Rearrange.balanced;
  Array.iter
    (fun b -> Alcotest.(check bool) "under theta" true (b <= avg *. 1.1 +. 1e-6))
    r.Rearrange.balance;
  Alcotest.(check bool) "moves happened" true (r.Rearrange.fine_tune_moves > 0)

let test_rearrange_step_budget () =
  let p = mk_placement ~partitions:16 () in
  let cm = Costmodel.make ~freq:freq_zero () in
  let clumps =
    List.init 8 (fun i -> { Clump.pids = [ (i * 4) mod 16 ]; w = 10.0; dest = -1 })
  in
  let r = Rearrange.rearrange cm p clumps ~epsilon:0.01 ~max_steps:1 () in
  Alcotest.(check bool) "at most one move" true (r.Rearrange.fine_tune_moves <= 1)

let test_rearrange_immovable_giant_clump () =
  let p = mk_placement () in
  let cm = Costmodel.make ~freq:freq_zero () in
  (* One giant clump cannot be balanced: the algorithm must terminate
     and report imbalance rather than loop. *)
  let clumps = [ { Clump.pids = [ 0 ]; w = 100.0; dest = -1 } ] in
  let r = Rearrange.rearrange cm p clumps ~epsilon:0.1 () in
  Alcotest.(check bool) "terminates unbalanced" false r.Rearrange.balanced

let test_plan_cost_monotone () =
  let p = mk_placement () in
  let cm = Costmodel.make ~freq:freq_zero () in
  let c = { Clump.pids = [ 0 ]; w = 1.0; dest = -1 } in
  let at_home = Rearrange.plan_cost cm p [ (c, 0) ] in
  let at_secondary = Rearrange.plan_cost cm p [ (c, 1) ] in
  let at_absent = Rearrange.plan_cost cm p [ (c, 3) ] in
  Alcotest.(check bool) "home <= secondary <= absent" true
    (at_home <= at_secondary && at_secondary <= at_absent)

(* --- plans --- *)

let test_plan_actions_derived () =
  let p = mk_placement () in
  let c = { Clump.pids = [ 0; 1 ]; w = 1.0; dest = -1 } in
  (* Destination node 3 has no replica of 0 or 1. *)
  let plan = Plan.of_assignments p [ (c, 3) ] ~eager_remaster:false in
  Alcotest.(check int) "two adds" 2 plan.Plan.adds;
  Alcotest.(check int) "no eager remasters" 0 plan.Plan.remasters

let test_plan_eager_remaster_for_secondary () =
  let p = mk_placement () in
  let c = { Clump.pids = [ 0 ]; w = 1.0; dest = -1 } in
  (* Node 1 holds a secondary of 0. *)
  let plan = Plan.of_assignments p [ (c, 1) ] ~eager_remaster:true in
  Alcotest.(check int) "no add needed" 0 plan.Plan.adds;
  Alcotest.(check int) "one remaster" 1 plan.Plan.remasters

let test_plan_empty_when_already_placed () =
  let p = mk_placement () in
  let c = { Clump.pids = [ 0; 4 ]; w = 1.0; dest = -1 } in
  let plan = Plan.of_assignments p [ (c, 0) ] ~eager_remaster:true in
  Alcotest.(check bool) "empty plan" true (Plan.is_empty plan)

(* --- schism --- *)

let test_schism_balances_by_weight () =
  let clumps = List.init 8 (fun i -> { Clump.pids = [ i ]; w = 10.0; dest = -1 }) in
  let assignments = Schism.assign clumps ~nodes:4 in
  let load = Array.make 4 0.0 in
  List.iter (fun ((c : Clump.t), n) -> load.(n) <- load.(n) +. c.Clump.w) assignments;
  Array.iter (fun l -> Alcotest.(check (float 1e-9)) "even split" 20.0 l) load

let test_schism_ignores_placement_cost () =
  (* Schism sends the largest clump to node 0 regardless of where its
     replicas already live — the "unnecessary migrations" behaviour. *)
  let clumps =
    [
      { Clump.pids = [ 3 ]; w = 100.0; dest = -1 };
      { Clump.pids = [ 0 ]; w = 1.0; dest = -1 };
    ]
  in
  let assignments = Schism.assign clumps ~nodes:4 in
  let big = List.find (fun ((c : Clump.t), _) -> c.Clump.w = 100.0) assignments in
  Alcotest.(check int) "largest first to node 0" 0 (snd big)

(* --- property tests --- *)

let txn_batch_gen =
  (* Random batches of partition sets over 16 partitions. *)
  QCheck.(list_of_size (Gen.int_range 1 60) (list_of_size (Gen.int_range 1 4) (int_range 0 15)))

let prop_clumps_partition_hot_vertices =
  QCheck.Test.make ~name:"clumps cover each hot vertex exactly once" ~count:100
    txn_batch_gen
    (fun batch ->
      let g = Heatgraph.create ~partitions:16 in
      List.iter (fun parts -> Heatgraph.add_txn g ~parts) batch;
      let p = mk_placement ~partitions:16 () in
      let clumps = Clump.generate g ~placement:p ~alpha:1.0 ~cross_boost:4.0 in
      let all = List.concat_map (fun (c : Clump.t) -> c.Clump.pids) clumps in
      let hot = Heatgraph.hottest_first g in
      List.length all = List.length hot
      && List.sort compare all = List.sort compare hot)

let prop_rearrange_assigns_valid_nodes =
  QCheck.Test.make ~name:"rearrangement destinations are valid nodes" ~count:100
    txn_batch_gen
    (fun batch ->
      let g = Heatgraph.create ~partitions:16 in
      List.iter (fun parts -> Heatgraph.add_txn g ~parts) batch;
      let p = mk_placement ~partitions:16 () in
      let clumps = Clump.generate g ~placement:p ~alpha:1.0 ~cross_boost:4.0 in
      let r = Rearrange.rearrange (Costmodel.make ~freq:freq_zero ()) p clumps () in
      List.for_all (fun (_, n) -> n >= 0 && n < 4) r.Rearrange.assignments)

let prop_rearrange_balance_sums_to_total =
  QCheck.Test.make ~name:"balance factors sum to total clump weight" ~count:100
    txn_batch_gen
    (fun batch ->
      let g = Heatgraph.create ~partitions:16 in
      List.iter (fun parts -> Heatgraph.add_txn g ~parts) batch;
      let p = mk_placement ~partitions:16 () in
      let clumps = Clump.generate g ~placement:p ~alpha:1.0 ~cross_boost:4.0 in
      let r = Rearrange.rearrange (Costmodel.make ~freq:freq_zero ()) p clumps () in
      let total = Clump.total_weight clumps in
      Float.abs (Array.fold_left ( +. ) 0.0 r.Rearrange.balance -. total) < 1e-6)

let prop_cost_nonnegative =
  QCheck.Test.make ~name:"clump cost is non-negative" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 5) (int_range 0 7)) (int_range 0 3))
    (fun (parts, node) ->
      let p = mk_placement () in
      let cm = Costmodel.make ~freq:(fun v -> float_of_int v /. 8.0) () in
      Costmodel.clump_cost cm p ~parts ~node >= 0.0
      && Costmodel.txn_route_cost cm p ~parts ~node >= 0.0)

let () =
  Alcotest.run "lion_analysis"
    [
      ( "heatgraph",
        [
          Alcotest.test_case "accumulates" `Quick test_graph_accumulates;
          Alcotest.test_case "triple txn pairs" `Quick test_graph_triple_txn_pairs;
          Alcotest.test_case "cross-node boost" `Quick test_graph_cross_boost;
          Alcotest.test_case "predicted merge" `Quick test_graph_predicted_merge;
          Alcotest.test_case "hottest first" `Quick test_graph_hottest_first;
          Alcotest.test_case "mean edge weight" `Quick test_graph_mean_edge_weight;
          Alcotest.test_case "clear" `Quick test_graph_clear;
        ] );
      ( "clumps",
        [
          Alcotest.test_case "groups hot pairs" `Quick test_clumps_group_hot_pairs;
          Alcotest.test_case "alpha filters" `Quick test_clumps_alpha_filters;
          Alcotest.test_case "covers vertices once" `Quick
            test_clumps_cover_all_hot_vertices_once;
          Alcotest.test_case "max weight cap" `Quick test_clumps_max_weight_cap;
          Alcotest.test_case "total weight" `Quick test_clump_total_weight;
        ] );
      ( "costmodel",
        [
          Alcotest.test_case "primary free" `Quick test_cost_zero_when_primary_local;
          Alcotest.test_case "secondary costs w_r" `Quick test_cost_remaster_when_secondary;
          Alcotest.test_case "absent costs w_m" `Quick test_cost_migration_when_absent;
          Alcotest.test_case "hot primary pricier" `Quick
            test_cost_hot_primary_remaster_pricier;
          Alcotest.test_case "find_dst prefers home" `Quick test_find_dst_prefers_current_primary;
          Alcotest.test_case "route cost ordering" `Quick test_route_cost_orders_options;
        ] );
      ( "rearrange",
        [
          Alcotest.test_case "respects costs" `Quick test_rearrange_respects_costs;
          Alcotest.test_case "balances load" `Quick test_rearrange_balances_load;
          Alcotest.test_case "step budget" `Quick test_rearrange_step_budget;
          Alcotest.test_case "giant clump terminates" `Quick
            test_rearrange_immovable_giant_clump;
          Alcotest.test_case "plan cost monotone" `Quick test_plan_cost_monotone;
        ] );
      ( "plan",
        [
          Alcotest.test_case "actions derived" `Quick test_plan_actions_derived;
          Alcotest.test_case "eager remaster" `Quick test_plan_eager_remaster_for_secondary;
          Alcotest.test_case "empty when placed" `Quick test_plan_empty_when_already_placed;
        ] );
      ( "schism",
        [
          Alcotest.test_case "balances by weight" `Quick test_schism_balances_by_weight;
          Alcotest.test_case "ignores placement" `Quick test_schism_ignores_placement_cost;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_clumps_partition_hot_vertices;
            prop_rearrange_assigns_valid_nodes;
            prop_rearrange_balance_sums_to_total;
            prop_cost_nonnegative;
          ] );
    ]
