(* Tests for the harness utilities: workload builders and CSV export.
   (Runner behaviour is covered by test_integration.) *)

module Config = Lion_store.Config
module Workloads = Lion_harness.Workloads
module Export = Lion_harness.Export
module Txn = Lion_workload.Txn

let cfg = Config.default

let test_ycsb_builder_parametrised () =
  let gen = Workloads.ycsb ~cross:1.0 cfg in
  for _ = 1 to 50 do
    Alcotest.(check bool) "cross pairs" true (Txn.is_cross_partition (gen ~time:0.0))
  done

let test_ycsb_builder_reuses_generator () =
  let gen = Workloads.ycsb cfg in
  let a = gen ~time:0.0 and b = gen ~time:0.0 in
  Alcotest.(check bool) "ids advance (one generator)" true (b.Txn.id = a.Txn.id + 1)

let test_tpcc_builder () =
  let gen = Workloads.tpcc ~skew:0.5 ~cross:0.5 cfg in
  let t = gen ~time:0.0 in
  Alcotest.(check bool) "has operations" true (t.Txn.ops <> [])

let test_dynamic_builder_respects_time () =
  let gen = Workloads.dynamic_position ~period:2.0 cfg in
  (* Phase C (100% cross) starts at 2 periods. *)
  let crosses = ref 0 in
  for _ = 1 to 50 do
    if Txn.is_cross_partition (gen ~time:(Lion_sim.Engine.seconds 5.0)) then incr crosses
  done;
  Alcotest.(check int) "phase C all cross" 50 !crosses

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_csv_escaping () =
  let path = Filename.temp_file "lion" ".csv" in
  Export.write_csv ~path ~header:[ "a"; "b" ]
    ~rows:[ [ "plain"; "with,comma" ]; [ "with\"quote"; "multi\nline" ] ];
  let content = read_file path in
  Sys.remove path;
  Alcotest.(check bool) "comma quoted" true
    (String.length content > 0
    &&
    let contains s sub =
      let n = String.length sub in
      let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
      go 0
    in
    contains content "\"with,comma\"" && contains content "\"with\"\"quote\"")

let test_series_csv_shape () =
  let path = Filename.temp_file "lion" ".csv" in
  Export.series_csv ~path [ ("x", [| 1.0; 2.0 |]); ("y", [| 3.0 |]) ];
  let content = read_file path in
  Sys.remove path;
  let lines = String.split_on_char '\n' (String.trim content) in
  Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
  Alcotest.(check string) "header" "second,x,y" (List.hd lines);
  Alcotest.(check string) "padding" "2,2.0," (List.nth lines 2)

let test_result_rows_header_matches_rows () =
  let header, rows = Export.result_rows [] in
  Alcotest.(check bool) "header non-empty" true (header <> []);
  List.iter
    (fun col ->
      Alcotest.(check bool) (col ^ " column present") true (List.mem col header))
    [
      "frac_execution"; "frac_prepare"; "frac_commit"; "frac_remaster";
      "frac_scheduling"; "frac_replication"; "timeouts"; "retries"; "drops";
      "unavail_s"; "time_to_recover_s"; "goodput_under_fault";
      "offered_txn_s"; "goodput_txn_s"; "p99_us"; "sheds"; "breaker_rejects";
      "budget_denials"; "deadline_giveups"; "deadline_misses";
    ];
  Alcotest.(check int) "no rows for empty" 0 (List.length rows)

let test_result_rows_width () =
  let r =
    {
      Lion_harness.Runner.throughput = 1.0;
      goodput = 1.0;
      offered = 1.0;
      commits = 1;
      aborts = 0;
      p50 = 1.0;
      p75 = 1.0;
      p90 = 1.0;
      p95 = 1.0;
      p99 = 1.0;
      mean_latency = 1.0;
      single_node_ratio = 1.0;
      remaster_ratio = 0.0;
      throughput_series = [||];
      goodput_series = [||];
      bytes_series = [||];
      bytes_per_txn = 0.0;
      phase_fractions = [ (Lion_sim.Metrics.Execution, 1.0) ];
      remasters = 0;
      replica_adds = 0;
      timeouts = 0;
      retries = 0;
      drops = 0;
      sheds = 0;
      breaker_rejects = 0;
      breaker_opens = 0;
      budget_denials = 0;
      deadline_giveups = 0;
      deadline_misses = 0;
      stale_ack_rejections = 0;
      availability = [||];
      unavail_seconds = 0.0;
      time_to_recover = infinity;
      goodput_under_fault = 0.0;
      engine_events = 0;
    }
  in
  let header, rows = Export.result_rows [ ("x", r) ] in
  match rows with
  | [ row ] ->
      Alcotest.(check int) "row width matches header" (List.length header)
        (List.length row);
      (* A run that ends degraded exports time_to_recover as "inf", not
         a float-formatted infinity. *)
      Alcotest.(check bool) "inf cell" true (List.mem "inf" row)
  | _ -> Alcotest.fail "expected one row"

let () =
  Alcotest.run "lion_harness"
    [
      ( "workloads",
        [
          Alcotest.test_case "ycsb parametrised" `Quick test_ycsb_builder_parametrised;
          Alcotest.test_case "ycsb one generator" `Quick test_ycsb_builder_reuses_generator;
          Alcotest.test_case "tpcc builder" `Quick test_tpcc_builder;
          Alcotest.test_case "dynamic respects time" `Quick test_dynamic_builder_respects_time;
        ] );
      ( "export",
        [
          Alcotest.test_case "csv escaping" `Quick test_csv_escaping;
          Alcotest.test_case "series shape" `Quick test_series_csv_shape;
          Alcotest.test_case "result rows" `Quick test_result_rows_header_matches_rows;
          Alcotest.test_case "result row width" `Quick test_result_rows_width;
        ] );
    ]
